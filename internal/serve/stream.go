package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
)

// Event is one entry of a job's progress stream, serialized as NDJSON
// (one JSON object per line) or as SSE data frames. Seq numbers are
// dense and start at 0, so a reconnecting client can detect gaps from
// the drop counter alone.
type Event struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // queued, started, warning, trial, done, failed, canceled
	// Trial fields are set for type "trial": the trial index, its
	// terminal status (done/failed/canceled), and where the result came
	// from (executed/cache/journal/flight).
	Trial  *int   `json:"trial,omitempty"`
	Status string `json:"status,omitempty"`
	Source string `json:"source,omitempty"`
	// Message carries human-readable detail (warnings, failure text).
	Message string `json:"message,omitempty"`
	// Dropped counts earlier trial events evicted from the replay buffer
	// (set on terminal events when the cap was hit).
	Dropped int `json:"dropped,omitempty"`
}

// eventLog is a job's append-only progress log with bounded replay: all
// lifecycle events are retained, trial events are retained up to cap,
// and everything beyond the cap is counted in dropped. Readers follow
// the log by index under a condition variable, so a slow stream client
// never blocks the worker appending events.
type eventLog struct {
	mu      sync.Mutex
	cond    *sync.Cond
	events  []Event
	dropped int
	cap     int
	closed  bool
}

func newEventLog(capacity int) *eventLog {
	l := &eventLog{cap: capacity}
	l.cond = sync.NewCond(&l.mu)
	return l
}

// append adds an event, assigning its sequence number. Trial events
// beyond the replay cap are dropped (counted); lifecycle events are
// always kept so every stream ends with a terminal event.
func (l *eventLog) append(e Event) {
	l.mu.Lock()
	if e.Type == "trial" && l.cap > 0 && len(l.events) >= l.cap {
		l.dropped++
		l.mu.Unlock()
		return
	}
	e.Seq = len(l.events) + l.dropped
	l.events = append(l.events, e)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// close marks the log complete (terminal event appended); followers
// drain the remaining entries and stop.
func (l *eventLog) close() {
	l.mu.Lock()
	l.closed = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// snapshot returns the retained events and the drop count.
func (l *eventLog) snapshot() ([]Event, int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out, l.dropped
}

// next blocks until an event at index i (into the retained slice)
// exists, the log closes, or the follower's stop flag is raised;
// ok=false means there is nothing further to read. The stop flag must be
// flipped under the log's lock via stop() so the predicate change and
// the broadcast are ordered.
func (l *eventLog) next(i int, stopped *bool) (Event, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i >= len(l.events) && !l.closed && !*stopped {
		l.cond.Wait()
	}
	if *stopped {
		return Event{}, false
	}
	if i < len(l.events) {
		return l.events[i], true
	}
	return Event{}, false
}

// stop raises a follower's stop flag and wakes blocked next calls (used
// when a stream's client disconnects, so the handler goroutine exits
// instead of waiting forever on an idle log).
func (l *eventLog) stop(stopped *bool) {
	l.mu.Lock()
	*stopped = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// streamEvents writes the job's event log to w until the log closes,
// as NDJSON by default or SSE when the client asked for
// text/event-stream. It returns when the log is drained or writing
// fails (client gone).
func streamEvents(w http.ResponseWriter, r *http.Request, log *eventLog) {
	sse := r.Header.Get("Accept") == "text/event-stream"
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)

	// sync.Cond has no channel form, so a watcher goroutine bridges the
	// request context into the follower's stop flag: on disconnect the
	// blocked next call returns and the handler exits.
	stopped := false
	done := make(chan struct{})
	defer close(done)
	go func() {
		select {
		case <-r.Context().Done():
			log.stop(&stopped)
		case <-done:
		}
	}()

	for i := 0; ; i++ {
		e, ok := log.next(i, &stopped)
		if !ok {
			return
		}
		if err := writeEvent(w, e, sse); err != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

func writeEvent(w io.Writer, e Event, sse bool) error {
	data, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if sse {
		_, err = fmt.Fprintf(w, "data: %s\n\n", data)
		return err
	}
	_, err = fmt.Fprintf(w, "%s\n", data)
	return err
}
