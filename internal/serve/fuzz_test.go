package serve

import (
	"bytes"
	"testing"
)

// FuzzRunRequest throws arbitrary bytes at the POST /v1/runs decoder: no
// input may panic, every rejection must be a structured 4xx RequestError
// with a stable code, and every accepted request must respect the
// configured limits and materialize a valid scenario. This is the
// boundary where hostile network input meets the simulation core, so the
// decoder gets its own fuzz target on top of FuzzScenarioSpecJSON.
func FuzzRunRequest(f *testing.F) {
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 6}, "event": "tdown", "seed": 5}, "trials": 2}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "ring", "size": 5}, "event": "tlong", "mraiSeconds": 5}}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 4}, "event": "tdown",
		"policy": "badGadget", "mraiSeconds": -1, "maxEvents": 30000}}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "edges", "size": 3, "edges": [[0,1],[1,2],[2,0]]}, "dest": 1}}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "file", "path": "/etc/passwd"}}}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 9999}}}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 4}}, "trials": -3}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 4}}, "trials": 1000000}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 4}}, "bogus": true}`))
	f.Add([]byte(`{"spec": {"topology"`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"spec": {"topology": {"family": "clique", "size": 4}}} trailing`))

	limits := Limits{MaxNodes: 16, MaxTrials: 8, MaxBodyBytes: 1 << 16}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, sc, rerr := ParseRunRequest(bytes.NewReader(data), limits)
		if rerr != nil {
			if rerr.Status < 400 || rerr.Status > 499 {
				t.Fatalf("rejection status = %d, want 4xx", rerr.Status)
			}
			if rerr.Code == "" || rerr.Message == "" {
				t.Fatalf("unstructured rejection: %+v", rerr)
			}
			if req != nil {
				t.Fatal("request returned alongside an error")
			}
			return
		}
		if req.Trials < 1 || req.Trials > limits.MaxTrials {
			t.Fatalf("accepted trial count %d outside [1, %d]", req.Trials, limits.MaxTrials)
		}
		if n := sc.Graph.NumNodes(); n > limits.MaxNodes {
			t.Fatalf("accepted topology with %d nodes, limit %d", n, limits.MaxNodes)
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("accepted request materialized an invalid scenario: %v", err)
		}
	})
}
