package serve

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"strconv"
	"strings"

	"bgploop/internal/durable"
	"bgploop/internal/sweep"
)

// walStateAborted is the WAL state recorded for a submission whose WAL
// record was durably written but whose enqueue was then rejected
// (queue full). Recovery drops aborted jobs entirely — the client was
// told 429 and never saw a job id.
const walStateAborted = "aborted"

// RecoveryStats summarises what WAL replay did at startup; cmd/bgpd
// logs it and /metrics exposes the counters.
type RecoveryStats struct {
	// Replayed counts incomplete jobs (accepted but not terminal at the
	// time of the crash) that were re-enqueued; each resumes from its
	// existing sweep journal, so already-completed trials are not
	// re-simulated.
	Replayed int
	// Restored counts terminal jobs whose final state (digests, stats)
	// was reconstructed so GET /v1/runs/{id} keeps answering after a
	// restart.
	Restored int
	// DroppedRecords counts torn or corrupt WAL lines skipped on load.
	DroppedRecords int
	// WALBytes is the log's size after the startup compaction.
	WALBytes int64
}

// walPath locates the job WAL under the store directory.
func walPath(storeDir string) string {
	return filepath.Join(storeDir, "wal", "jobs.jsonl")
}

// walAppend appends one record, tracking errors and the size gauge.
// WAL failures after admission never fail the job itself — the job is
// already running and its results are still served; only crash-recovery
// fidelity degrades, which the error counter makes visible.
func (s *Server) walAppend(r durable.Record) error {
	if s.wal == nil {
		return nil
	}
	err := s.wal.Append(r)
	if err != nil {
		s.metrics.inc("bgpd_wal_errors_total", 1)
	}
	s.metrics.set("bgpd_wal_bytes", s.wal.Bytes())
	return err
}

// walRecordSubmit renders the admission record for job j. The request
// spec is embedded verbatim so recovery can rebuild the scenario.
func walRecordSubmit(j *job) (durable.Record, error) {
	spec, err := json.Marshal(j.spec)
	if err != nil {
		return durable.Record{}, err
	}
	return durable.Record{
		Type:    "job",
		Job:     j.id,
		Key:     j.key,
		Trials:  j.trials,
		Spec:    spec,
		Warning: j.warning,
	}, nil
}

// walRecordTerminal renders the terminal state record for job j; the
// caller holds j.mu.
func walRecordTerminal(j *job) durable.Record {
	r := durable.Record{
		Type:            "state",
		Job:             j.id,
		State:           string(j.state),
		Error:           j.errText,
		AggregateDigest: j.aggDig,
		ResultDigests:   j.resDigs,
	}
	if stats, err := json.Marshal(j.stats); err == nil {
		r.Stats = stats
	}
	return r
}

// recoverWAL replays the job WAL into the (not yet serving) job table:
// terminal jobs are restored as queryable records, incomplete jobs are
// re-enqueued, aborted submissions are dropped, and the log is
// compacted to the fold. Called from New before the workers start, so
// no locking is needed.
func (s *Server) recoverWAL(records []durable.Record) error {
	type fold struct {
		submit durable.Record
		last   *durable.Record // latest state record, nil if none
	}
	folds := map[string]*fold{}
	var jobOrder []string
	for i := range records {
		r := records[i]
		switch r.Type {
		case "job":
			if _, ok := folds[r.Job]; !ok {
				folds[r.Job] = &fold{submit: r}
				jobOrder = append(jobOrder, r.Job)
			}
		case "state":
			if f, ok := folds[r.Job]; ok {
				f.last = &records[i]
			}
		}
		// Keep new IDs past everything the log has ever named.
		if n, ok := jobIDNumber(r.Job); ok && n > s.nextID {
			s.nextID = n
		}
	}

	var compacted []durable.Record
	for _, id := range jobOrder {
		f := folds[id]
		state := StateQueued
		if f.last != nil {
			state = JobState(f.last.State)
		}
		if f.last != nil && f.last.State == walStateAborted {
			continue // rejected enqueue; the client never saw this id
		}
		j, err := jobFromRecord(f.submit, s.cfg.EventCap)
		if err != nil {
			// The spec no longer parses (schema drift across versions):
			// surface the job as failed rather than silently forgetting an
			// accepted submission.
			s.metrics.inc("bgpd_wal_errors_total", 1)
			j.state = StateFailed
			j.errText = fmt.Sprintf("recovery: %v", err)
			j.log.append(Event{Type: "failed", Message: j.errText})
			j.log.close()
			s.installRecovered(j)
			compacted = append(compacted, f.submit, walRecordTerminal(j))
			continue
		}
		if state.terminal() {
			// Finished in a previous life: restore the terminal view so
			// GET /v1/runs/{id} survives the restart. The aggregate body is
			// not journaled — digests and stats are, and they are what the
			// parity tooling consumes.
			j.state = state
			j.errText = f.last.Error
			j.aggDig = f.last.AggregateDigest
			j.resDigs = f.last.ResultDigests
			if f.last.Stats != nil {
				_ = json.Unmarshal(f.last.Stats, &j.stats)
			}
			j.log.append(Event{Type: string(state), Message: "restored from WAL"})
			j.log.close()
			s.installRecovered(j)
			s.recovery.Restored++
			compacted = append(compacted, f.submit, walRecordTerminal(j))
			continue
		}
		// Accepted but not finished: re-enqueue. The job reruns through the
		// normal path; with a cache directory it resumes from its existing
		// sweep journal, so completed trials replay instead of re-executing.
		select {
		case s.queue <- j:
			j.log.append(Event{Type: "queued", Message: "re-enqueued from WAL"})
			s.installRecovered(j)
			if j.key != "" {
				s.byKey[j.key] = j.id
			}
			s.recovery.Replayed++
			compacted = append(compacted, f.submit)
		default:
			// More incomplete jobs than queue capacity. Keep the job
			// visible as failed instead of dropping an accepted submission
			// on the floor.
			s.metrics.inc("bgpd_wal_errors_total", 1)
			j.state = StateFailed
			j.errText = "recovery: queue full, job not re-enqueued"
			j.log.append(Event{Type: "failed", Message: j.errText})
			j.log.close()
			s.installRecovered(j)
			compacted = append(compacted, f.submit, walRecordTerminal(j))
		}
	}

	if err := s.wal.Compact(compacted); err != nil {
		return fmt.Errorf("serve: compact WAL: %w", err)
	}
	s.recovery.WALBytes = s.wal.Bytes()
	s.metrics.inc("bgpd_wal_jobs_replayed_total", int64(s.recovery.Replayed))
	s.metrics.inc("bgpd_wal_jobs_restored_total", int64(s.recovery.Restored))
	s.metrics.inc("bgpd_wal_records_dropped_total", int64(s.recovery.DroppedRecords))
	s.metrics.set("bgpd_wal_bytes", s.wal.Bytes())
	return nil
}

// installRecovered registers a recovered job in the table. Called only
// from recovery (single-goroutine, pre-serving).
func (s *Server) installRecovered(j *job) {
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
}

// jobFromRecord rebuilds a job skeleton from its WAL submission record,
// including the replayable scenario.
func jobFromRecord(r durable.Record, eventCap int) (*job, error) {
	j := &job{
		id:      r.Job,
		key:     r.Key,
		trials:  r.Trials,
		warning: r.Warning,
		state:   StateQueued,
		log:     newEventLog(eventCap),
	}
	j.log.append(Event{Type: "recovered"})
	if r.Warning != "" {
		j.log.append(Event{Type: "warning", Message: r.Warning})
	}
	if err := json.Unmarshal(r.Spec, &j.spec); err != nil {
		return j, fmt.Errorf("bad spec in WAL record: %w", err)
	}
	sc, err := j.spec.Scenario()
	if err != nil {
		return j, fmt.Errorf("unbuildable scenario in WAL record: %w", err)
	}
	j.sc = sc
	return j, nil
}

// jobIDNumber parses the numeric suffix of "job-%06d" ids.
func jobIDNumber(id string) (int, bool) {
	rest, ok := strings.CutPrefix(id, "job-")
	if !ok {
		return 0, false
	}
	n, err := strconv.Atoi(rest)
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// Recovery reports what WAL replay did when the server started.
func (s *Server) Recovery() RecoveryStats { return s.recovery }

// quarantinedStats folds the executor's quarantine count into metrics;
// split out so recordTrialStats stays one switchboard.
func (s *Server) recordQuarantined(st sweep.Stats) {
	if st.Quarantined > 0 {
		s.metrics.inc("bgpd_cache_quarantined_total", int64(st.Quarantined))
	}
}
