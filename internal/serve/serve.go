// Package serve is bgpd's simulation-as-a-service layer: a deterministic
// job queue over the experiment sweep engine, exposed as a small HTTP
// API (POST /v1/runs, GET /v1/runs/{id}, streaming /events, /healthz,
// /metrics).
//
// The server is a pure shell around the simulation core: admission
// control, scheduling, caching, and streaming never influence what a
// trial computes. A result served by bgpd is byte-identical — digest for
// digest — to the same scenario run through `bgpsim`, and the e2e parity
// tests pin exactly that.
//
// Three layers keep duplicate work off the simulator:
//
//   - job-level dedupe: concurrent submissions of an identical cacheable
//     request collapse onto the already-queued/running job;
//   - trial-level singleflight (sweep.Flight, shared process-wide): jobs
//     that overlap in individual trials share executions;
//   - the content-addressed result cache: repeat submissions after
//     completion create a fresh job whose trials are all served from
//     disk (Executed == 0).
//
// The package sits in detlint's "harness" scope: goroutines are allowed,
// but no wall clock (the Config.Now hook injects time), no global rand
// (job IDs are sequential), no map-order dependence, and no float
// equality.
package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"path/filepath"
	"sync"
	"time"

	"bgploop/internal/dist"
	"bgploop/internal/durable"
	"bgploop/internal/experiment"
	"bgploop/internal/sweep"
)

// PreflightPolicy selects how the static safety gate treats
// statically-UNSAFE submissions.
type PreflightPolicy string

const (
	// PreflightStrict refuses UNSAFE scenarios at admission with a 422
	// carrying the dispute-wheel witness. The default.
	PreflightStrict PreflightPolicy = "strict"
	// PreflightWarn admits UNSAFE scenarios but attaches the witness as
	// a warning on the job and its event stream.
	PreflightWarn PreflightPolicy = "warn"
)

// Config tunes a Server. The zero value is usable for tests: results are
// uncached unless CacheDir is set, and time stands still unless Now is
// injected.
type Config struct {
	// CacheDir roots the content-addressed result cache and the resume
	// journals. Empty disables persistence (results are still computed
	// and served, dedupe degrades to in-flight collapsing only). When
	// StoreDir is set and CacheDir is empty, CacheDir defaults to
	// <StoreDir>/cache.
	CacheDir string
	// StoreDir, when non-empty, makes the server crash-safe: every
	// accepted submission is appended (and fsynced) to a job write-ahead
	// log under <StoreDir>/wal before admission returns, state
	// transitions are logged, and a restarted server replays the log —
	// re-enqueueing incomplete jobs (which resume from their sweep
	// journals) and restoring terminal job views so GET /v1/runs/{id}
	// survives the restart. Empty disables the WAL.
	StoreDir string
	// FS routes WAL, cache, and journal file operations; nil means the
	// real filesystem. Fault-injection tests pass a durable.FaultFS.
	FS durable.FS
	// JournalSync is the sweep checkpoint journal's fsync cadence (see
	// sweep.JournalOptions.SyncEvery).
	JournalSync int
	// Workers is the job worker-pool width (in-flight job cap); <= 0
	// means 2.
	Workers int
	// QueueDepth caps the jobs waiting for a worker; <= 0 means 16.
	// Submissions beyond queue+workers capacity get 429 + Retry-After.
	QueueDepth int
	// TrialWorkers is the per-job sweep parallelism; <= 0 means 1
	// (sequential, the regression oracle; results are byte-identical at
	// any width).
	TrialWorkers int
	// MaxJobs caps the retained job records; once exceeded the oldest
	// terminal jobs are evicted. <= 0 means 512.
	MaxJobs int
	// JobTimeout, when positive, deadlines each job's execution.
	JobTimeout time.Duration
	// Preflight is the static-safety admission policy; "" means strict.
	Preflight PreflightPolicy
	// Limits bounds individual submissions; zero fields take defaults.
	Limits Limits
	// EventCap bounds each job's event replay buffer; <= 0 means 4096.
	EventCap int
	// Now injects the wall clock for latency metrics (cmd/bgpd passes
	// time.Now; the serve package itself may not touch it — detlint's
	// norealtime scope). Nil freezes latencies at zero, which only mutes
	// metrics; correctness never depends on time.
	Now func() time.Time
	// Dist, when non-nil, distributes cacheable jobs across the worker
	// fleet: the coordinator's /v1/work endpoints are mounted on the
	// server mux, each cacheable job's trials run through the remote
	// executor seam (sweep.Options.Remote), and the coordinator's
	// counters surface as the bgpd_dist_* metric families. Requires a
	// CacheDir — distribution leans on content addresses. Uncacheable
	// jobs always run locally.
	Dist *dist.Coordinator
}

func (c Config) withDefaults() Config {
	if c.StoreDir != "" && c.CacheDir == "" {
		c.CacheDir = filepath.Join(c.StoreDir, "cache")
	}
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 16
	}
	if c.TrialWorkers <= 0 {
		c.TrialWorkers = 1
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 512
	}
	if c.MaxJobs < c.QueueDepth+c.Workers+1 {
		c.MaxJobs = c.QueueDepth + c.Workers + 1
	}
	if c.Preflight == "" {
		c.Preflight = PreflightStrict
	}
	if c.EventCap <= 0 {
		c.EventCap = 4096
	}
	if c.Now == nil {
		c.Now = func() time.Time { return time.Time{} }
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// JobState is a job's lifecycle state.
type JobState string

const (
	StateQueued   JobState = "queued"
	StateRunning  JobState = "running"
	StateDone     JobState = "done"
	StateFailed   JobState = "failed"
	StateCanceled JobState = "canceled"
)

// terminal reports whether the state is final.
func (s JobState) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// job is one accepted submission.
type job struct {
	id     string
	key    string // dedupe key; "" = uncacheable, never deduped
	trials int
	spec   experiment.ScenarioSpec
	sc     experiment.Scenario
	log    *eventLog

	submitted time.Time
	cancel    context.CancelFunc

	mu       sync.Mutex
	state    JobState
	warning  string
	errText  string
	stats    sweep.Stats
	agg      *experiment.Aggregate
	aggDig   string
	resDigs  []string
	started  time.Time
	finished time.Time
}

func (j *job) setState(st JobState) {
	j.mu.Lock()
	j.state = st
	j.mu.Unlock()
}

// Server is the bgpd service core. Create with New, mount via Handler,
// stop with Drain.
type Server struct {
	cfg     Config
	flight  *sweep.Flight
	metrics *registry
	mux     *http.ServeMux

	mu       sync.Mutex
	jobs     map[string]*job
	order    []string          // job IDs in admission order (for listing and eviction)
	byKey    map[string]string // dedupe key -> ID of the queued/running job
	queue    chan *job
	nextID   int
	draining bool

	wg sync.WaitGroup // worker pool

	// runSweep is the execution backend, swappable by tests to inject
	// blocking or counting runners. Defaults to experiment.RunSweep.
	runSweep func(gen experiment.Generator, trials int, opts experiment.SweepOptions) (experiment.Aggregate, []*experiment.Result, sweep.Stats, error)

	rootCtx    context.Context
	rootCancel context.CancelFunc

	// wal is the job write-ahead log (nil without Config.StoreDir);
	// recovery holds what its replay did at startup.
	wal      *durable.WAL
	recovery RecoveryStats
}

// New builds a Server, replays its job WAL (when Config.StoreDir is
// set), and starts the worker pool. The error is non-nil only for
// storage problems opening or compacting the WAL — a server without a
// StoreDir cannot fail.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		flight:   sweep.NewFlight(),
		metrics:  newRegistry(),
		jobs:     map[string]*job{},
		byKey:    map[string]string{},
		queue:    make(chan *job, cfg.QueueDepth),
		runSweep: experiment.RunSweep,
	}
	s.rootCtx, s.rootCancel = context.WithCancel(context.Background())
	s.mux = s.routes()
	if cfg.StoreDir != "" {
		wal, records, err := durable.OpenWAL(cfg.FS, walPath(cfg.StoreDir))
		if err != nil {
			return nil, fmt.Errorf("serve: open job WAL: %w", err)
		}
		s.wal = wal
		s.recovery.DroppedRecords = wal.Dropped()
		if err := s.recoverWAL(records); err != nil {
			_ = wal.Close()
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// Handler returns the HTTP surface.
func (s *Server) Handler() http.Handler { return s.mux }

// now reads the injected clock.
func (s *Server) now() time.Time { return s.cfg.Now() }

// submitOutcome describes an admission decision for the handler layer.
type submitOutcome struct {
	job     *job
	deduped bool
	err     *RequestError
}

// submit runs admission control for one parsed request: preflight gate,
// dedupe against in-flight jobs, capacity check, enqueue.
func (s *Server) submit(req *RunRequest, sc experiment.Scenario) submitOutcome {
	warning := ""
	rep, err := experiment.PreflightVerdict(sc)
	if err != nil {
		return submitOutcome{err: &RequestError{
			Status: http.StatusBadRequest, Code: "preflight_error",
			Message: fmt.Sprintf("static analysis failed: %v", err),
		}}
	}
	if rep.Verdict.String() == "UNSAFE" {
		detail := rep.Reason
		if rep.Wheel != nil {
			detail += "\n" + rep.Wheel.String()
		}
		if s.cfg.Preflight == PreflightStrict {
			s.metrics.inc("bgpd_preflight_refusals_total", 1)
			return submitOutcome{err: &RequestError{
				Status: http.StatusUnprocessableEntity, Code: "statically_unsafe",
				Message: "scenario is statically UNSAFE (dispute wheel); the server runs with -preflight strict\n" + detail,
			}}
		}
		warning = "scenario is statically UNSAFE (dispute wheel); running anyway under -preflight warn\n" + detail
	}

	key := jobKey(sc, req.Trials)

	s.mu.Lock()
	defer s.mu.Unlock()

	if s.draining {
		return submitOutcome{err: &RequestError{
			Status: http.StatusServiceUnavailable, Code: "draining",
			Message: "server is draining; no new jobs accepted",
		}}
	}
	// Singleflight at the job level: a concurrent identical submission
	// joins the queued/running job instead of creating a new one.
	// Completed jobs are deliberately not reused — a repeat submission
	// gets a fresh job whose trials are served from the result cache
	// (stats then show Executed == 0), so "was this recomputed?" stays
	// observable per submission.
	if key != "" {
		if id, ok := s.byKey[key]; ok {
			return submitOutcome{job: s.jobs[id], deduped: true}
		}
	}

	s.evictLocked()
	if len(s.jobs) >= s.cfg.MaxJobs {
		s.metrics.inc("bgpd_admission_rejects_total", 1)
		return submitOutcome{err: &RequestError{
			Status: http.StatusTooManyRequests, Code: "overloaded",
			Message: "job table is full of active jobs; retry later",
		}}
	}

	s.nextID++
	j := &job{
		id:        fmt.Sprintf("job-%06d", s.nextID),
		key:       key,
		trials:    req.Trials,
		spec:      req.Spec,
		sc:        sc,
		state:     StateQueued,
		warning:   warning,
		log:       newEventLog(s.cfg.EventCap),
		submitted: s.now(),
	}

	// Write-ahead: the acceptance is durable before the client hears
	// about it, so a crash after this point can never lose an
	// acknowledged job. A WAL failure (disk full, I/O error) refuses the
	// submission — accepting a job we cannot make durable would break the
	// crash-safety contract.
	if s.wal != nil {
		rec, err := walRecordSubmit(j)
		if err == nil {
			err = s.walAppend(rec)
		}
		if err != nil {
			s.nextID--
			return submitOutcome{err: &RequestError{
				Status: http.StatusInsufficientStorage, Code: "wal_error",
				Message: fmt.Sprintf("cannot journal the submission: %v", err),
			}}
		}
	}

	select {
	case s.queue <- j:
	default:
		// The acceptance record is already durable; mark it aborted so a
		// restart does not resurrect a submission the client was told to
		// retry.
		_ = s.walAppend(durable.Record{Type: "state", Job: j.id, State: walStateAborted})
		s.metrics.inc("bgpd_admission_rejects_total", 1)
		return submitOutcome{err: &RequestError{
			Status: http.StatusTooManyRequests, Code: "overloaded",
			Message: fmt.Sprintf("queue is full (%d waiting jobs); retry later", cap(s.queue)),
		}}
	}

	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	if key != "" {
		s.byKey[key] = j.id
	}
	s.metrics.inc("bgpd_submissions_total", 1)
	s.metrics.set("bgpd_queue_depth", int64(len(s.queue)))
	j.log.append(Event{Type: "queued"})
	if warning != "" {
		j.log.append(Event{Type: "warning", Message: warning})
		s.metrics.inc("bgpd_preflight_warnings_total", 1)
	}
	return submitOutcome{job: j}
}

// evictLocked drops the oldest terminal jobs while the table exceeds the
// retention cap. Active jobs are never evicted. Callers hold s.mu.
func (s *Server) evictLocked() {
	for len(s.jobs) >= s.cfg.MaxJobs {
		evicted := false
		for i, id := range s.order {
			j := s.jobs[id]
			j.mu.Lock()
			terminal := j.state.terminal()
			j.mu.Unlock()
			if terminal {
				delete(s.jobs, id)
				s.order = append(s.order[:i], s.order[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			return
		}
	}
}

// worker executes queued jobs until the queue closes (Drain).
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.metrics.set("bgpd_queue_depth", int64(len(s.queue)))
		s.runJob(j)
	}
}

// runJob executes one job through the sweep engine and records the
// outcome. The server layer adds nothing to the results: digests are
// computed with the same DigestResult/DigestAggregate used by bgpsim.
func (s *Server) runJob(j *job) {
	s.metrics.inc("bgpd_jobs_running", 1)
	defer s.metrics.inc("bgpd_jobs_running", -1)
	start := s.now()
	j.mu.Lock()
	j.state = StateRunning
	j.started = start
	j.mu.Unlock()
	s.metrics.observe("bgpd_job_latency_seconds_queue", start.Sub(j.submitted).Seconds())
	j.log.append(Event{Type: "started"})
	_ = s.walAppend(durable.Record{Type: "state", Job: j.id, State: string(StateRunning)})

	var (
		ctx    context.Context
		cancel context.CancelFunc
	)
	if s.cfg.JobTimeout > 0 {
		ctx, cancel = context.WithTimeout(s.rootCtx, s.cfg.JobTimeout)
	} else {
		ctx, cancel = context.WithCancel(s.rootCtx)
	}
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	defer cancel()

	var stats sweep.Stats
	opts := experiment.SweepOptions{
		Workers:           s.cfg.TrialWorkers,
		Context:           ctx,
		Stats:             &stats,
		ContinueOnFailure: true,
		Progress: func(trial int, st sweep.Status, src sweep.Source) {
			t := trial
			j.log.append(Event{Type: "trial", Trial: &t, Status: st.String(), Source: sourceName(src)})
		},
	}
	if s.cfg.CacheDir != "" && j.key != "" {
		// Cacheable job: content-addressed store, checkpoint journal,
		// and the process-wide trial singleflight. Uncacheable jobs
		// (empty CacheKey) run bare — nothing to share or persist.
		opts.CacheDir = s.cfg.CacheDir
		opts.Resume = true
		opts.Flight = s.flight
		opts.FS = s.cfg.FS
		opts.JournalSync = s.cfg.JournalSync

		if s.cfg.Dist != nil {
			// Distributed execution: register the sweep with the
			// coordinator (its ID is the job's dedupe key — a content
			// address, so a restarted server resumes the same sweep)
			// and plug its Execute in as the remote trial executor. All
			// trials must be in flight at once for the fleet to see
			// them, so the executor runs at full width; the merge is
			// byte-identical at any width. Any registration problem
			// falls back to local execution — distribution is an
			// optimization, never a correctness dependency.
			if spec, serr := dist.EncodeSweepSpec(j.spec, j.trials); serr == nil {
				if sw, serr := s.cfg.Dist.StartSweep(j.key, spec, j.trials); serr == nil {
					defer sw.Finish()
					opts.Remote = sw.Execute
					opts.Workers = j.trials
				}
			}
		}
	}

	agg, results, _, err := s.runSweep(experiment.Repeat(j.sc), j.trials, opts)

	end := s.now()
	s.metrics.observe("bgpd_job_latency_seconds_run", end.Sub(start).Seconds())
	s.metrics.observe("bgpd_job_latency_seconds_total", end.Sub(j.submitted).Seconds())
	s.recordTrialStats(stats)

	j.mu.Lock()
	j.finished = end
	j.stats = stats
	j.agg = &agg
	if d, derr := experiment.DigestAggregate(agg); derr == nil {
		j.aggDig = d
	}
	for _, r := range results {
		if d, derr := experiment.DigestResult(r); derr == nil {
			j.resDigs = append(j.resDigs, d)
		}
	}
	var terminal Event
	switch {
	case err != nil && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)):
		j.state = StateCanceled
		j.errText = err.Error()
		terminal = Event{Type: "canceled", Message: err.Error()}
		s.metrics.inc("bgpd_jobs_canceled_total", 1)
	case err != nil:
		j.state = StateFailed
		j.errText = err.Error()
		terminal = Event{Type: "failed", Message: err.Error()}
		s.metrics.inc("bgpd_jobs_failed_total", 1)
	default:
		j.state = StateDone
		terminal = Event{Type: "done", Message: fmt.Sprintf("%d/%d trials aggregated", agg.Trials, j.trials)}
		s.metrics.inc("bgpd_jobs_completed_total", 1)
	}
	walRec := walRecordTerminal(j)
	j.mu.Unlock()
	_ = s.walAppend(walRec)

	s.mu.Lock()
	if j.key != "" && s.byKey[j.key] == j.id {
		delete(s.byKey, j.key)
	}
	s.mu.Unlock()

	_, dropped := j.log.snapshot()
	terminal.Dropped = dropped
	j.log.append(terminal)
	j.log.close()
}

// recordTrialStats folds one job's sweep statistics into the metrics.
func (s *Server) recordTrialStats(st sweep.Stats) {
	s.metrics.inc("bgpd_trials_total", int64(st.Trials))
	s.metrics.inc("bgpd_trials_executed_total", int64(st.Executed))
	s.metrics.inc("bgpd_trials_cache_hits_total", int64(st.CacheHits))
	s.metrics.inc("bgpd_trials_cache_misses_total", int64(st.CacheMisses))
	s.metrics.inc("bgpd_trials_resumed_total", int64(st.Resumed))
	s.metrics.inc("bgpd_trials_deduped_total", int64(st.Deduped))
	s.metrics.inc("bgpd_trials_remote_total", int64(st.Remote))
	s.metrics.inc("bgpd_trials_failed_total", int64(st.Failed))
	s.metrics.inc("bgpd_trials_canceled_total", int64(st.Canceled))
	s.recordQuarantined(st)
	// Cache hit ratio in basis points (the exposition is integer-only).
	hits := s.metrics.snapshotCounter("bgpd_trials_cache_hits_total")
	misses := s.metrics.snapshotCounter("bgpd_trials_cache_misses_total")
	if probes := hits + misses; probes > 0 {
		s.metrics.set("bgpd_cache_hit_ratio_bp", hits*10_000/probes)
	}
}

// Drain stops admission, closes the queue, and waits for in-flight jobs.
// When ctx expires first, running jobs are canceled cooperatively and
// Drain still waits for the workers to exit before returning ctx's
// error. After Drain returns no worker goroutines remain.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
		s.rootCancel()
	case <-ctx.Done():
		s.rootCancel() // cancel in-flight sweeps; workers exit promptly
		<-done
		err = ctx.Err()
	}
	if s.wal != nil {
		if cerr := s.wal.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	return err
}

// jobKey derives the job-level dedupe key from the scenario content
// address and the trial count. Uncacheable scenarios get "" and are
// never deduped — without a content address there is no proof two
// submissions are the same work.
func jobKey(sc experiment.Scenario, trials int) string {
	ck := sc.CacheKey()
	if ck == "" {
		return ""
	}
	return fmt.Sprintf("%s/trials=%d", ck, trials)
}

// sourceName renders a sweep.Source for event streams.
func sourceName(src sweep.Source) string {
	switch src {
	case sweep.SourceExecuted:
		return "executed"
	case sweep.SourceCache:
		return "cache"
	case sweep.SourceJournal:
		return "journal"
	case sweep.SourceFlight:
		return "flight"
	case sweep.SourceRemote:
		return "remote"
	default:
		return ""
	}
}
