package serve

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"

	"bgploop/internal/metrics"
)

// registry is bgpd's metric store: named counters, gauges, and latency
// histograms, rendered in a Prometheus-style text exposition. It exists
// so the server's observability never touches the simulation layer —
// counters are updated from handler and worker code only, and nothing in
// here feeds back into results or cache keys.
type registry struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]int64
	hists    map[string]*metrics.Histogram
	// histBounds is the shared bucket layout, fixed at construction so
	// the exposition is stable across servers.
	histBounds []float64
}

// latencyBuckets is the default histogram layout for the per-phase job
// latency metrics, in seconds.
var latencyBuckets = []float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30, 60}

func newRegistry() *registry {
	return &registry{
		counters:   map[string]int64{},
		gauges:     map[string]int64{},
		hists:      map[string]*metrics.Histogram{},
		histBounds: latencyBuckets,
	}
}

// inc adds delta to a named counter.
func (r *registry) inc(name string, delta int64) {
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// set replaces a named gauge value.
func (r *registry) set(name string, v int64) {
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// observe records a latency sample (in seconds) into a named histogram.
func (r *registry) observe(name string, seconds float64) {
	r.mu.Lock()
	h, ok := r.hists[name]
	if !ok {
		h = metrics.NewHistogram(r.histBounds...)
		r.hists[name] = h
	}
	h.Observe(seconds)
	r.mu.Unlock()
}

// snapshotCounter reads a counter (tests and the cache-ratio gauge).
func (r *registry) snapshotCounter(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// write renders the text exposition. Families are emitted in sorted name
// order so the output is deterministic (and detlint's maprange analyzer
// has nothing to object to).
func (r *registry) write(w io.Writer) error {
	r.mu.Lock()
	defer r.mu.Unlock()

	names := make([]string, 0, len(r.counters))
	for name := range r.counters { //detlint:allow maprange keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.counters[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.gauges { //detlint:allow maprange keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s %d\n", name, r.gauges[name]); err != nil {
			return err
		}
	}

	names = names[:0]
	for name := range r.hists { //detlint:allow maprange keys are sorted before use
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := r.hists[name]
		bounds := h.Bounds()
		cum := h.Cumulative()
		for i, b := range bounds {
			if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatBound(b), cum[i]); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, h.Count()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, strconv.FormatFloat(h.Sum(), 'g', -1, 64)); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// formatBound renders a bucket boundary with shortest-round-trip float
// formatting, matching the exposition conventions.
func formatBound(b float64) string {
	return strconv.FormatFloat(b, 'g', -1, 64)
}
