package serve

import (
	"encoding/json"
	"net/http"

	"bgploop/internal/buildinfo"
	"bgploop/internal/experiment"
	"bgploop/internal/sweep"
)

// JobView is the JSON shape of GET /v1/runs/{id} and of the submit
// response. Digests use the exact functions behind `bgpsim -digest`
// (experiment.DigestResult / DigestAggregate), so a client can diff a
// served run against a local one byte for byte.
type JobView struct {
	ID      string   `json:"id"`
	State   JobState `json:"state"`
	Trials  int      `json:"trials"`
	Warning string   `json:"warning,omitempty"`
	Error   string   `json:"error,omitempty"`
	// Deduped is set on submit responses when the submission joined an
	// already-queued/running identical job.
	Deduped bool `json:"deduped,omitempty"`

	// Stats reports how the sweep satisfied each trial (simulated,
	// cache hit, journal resume, in-flight share); see sweep.Stats.
	Stats *sweep.Stats `json:"stats,omitempty"`
	// Aggregate carries the metric samples; AggregateDigest and
	// ResultDigests are the canonical content digests.
	Aggregate       *experiment.Aggregate `json:"aggregate,omitempty"`
	AggregateDigest string                `json:"aggregateDigest,omitempty"`
	ResultDigests   []string              `json:"resultDigests,omitempty"`
	// Events counts retained stream events; DroppedEvents the trial
	// events evicted beyond the replay cap.
	Events        int `json:"events"`
	DroppedEvents int `json:"droppedEvents,omitempty"`
}

// view snapshots a job for serialization.
func (j *job) view() JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := JobView{
		ID:      j.id,
		State:   j.state,
		Trials:  j.trials,
		Warning: j.warning,
		Error:   j.errText,
	}
	if j.state.terminal() {
		st := j.stats
		v.Stats = &st
		v.Aggregate = j.agg
		v.AggregateDigest = j.aggDig
		v.ResultDigests = j.resDigs
	}
	events, dropped := j.log.snapshot()
	v.Events = len(events)
	v.DroppedEvents = dropped
	return v
}

// routes builds the HTTP surface.
func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	if s.cfg.Dist != nil {
		// Worker-fleet endpoints (/v1/work/*) live on the same mux as
		// the public API; the coordinator owns their handlers.
		s.cfg.Dist.Mount(mux)
	}
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body := http.MaxBytesReader(w, r.Body, s.cfg.Limits.MaxBodyBytes)
	req, sc, rerr := ParseRunRequest(body, s.cfg.Limits)
	if rerr != nil {
		s.metrics.inc("bgpd_bad_requests_total", 1)
		rerr.writeTo(w)
		return
	}
	out := s.submit(req, sc)
	if out.err != nil {
		if out.err.Status == http.StatusTooManyRequests {
			// The queue is depth-bounded, not time-bounded; 1s is a
			// polite floor, not an estimate.
			w.Header().Set("Retry-After", "1")
		}
		out.err.writeTo(w)
		return
	}
	v := out.job.view()
	v.Deduped = out.deduped
	status := http.StatusAccepted
	if out.deduped {
		status = http.StatusOK
	}
	writeJSON(w, status, v)
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]JobView, 0, len(s.order))
	jobs := make([]*job, 0, len(s.order))
	for _, id := range s.order {
		jobs = append(jobs, s.jobs[id])
	}
	s.mu.Unlock()
	for _, j := range jobs {
		views = append(views, j.view())
	}
	writeJSON(w, http.StatusOK, struct {
		Runs []JobView `json:"runs"`
	}{views})
}

// lookup resolves the {id} path value; nil means the 404 was written.
func (s *Server) lookup(w http.ResponseWriter, r *http.Request) *job {
	id := r.PathValue("id")
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		(&RequestError{Status: http.StatusNotFound, Code: "unknown_run", Message: "no run " + id}).writeTo(w)
		return nil
	}
	return j
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.view())
	}
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	if j := s.lookup(w, r); j != nil {
		streamEvents(w, r, j.log)
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	status := http.StatusOK
	state := "ok"
	if draining {
		// Load balancers should stop sending work, but the process is
		// still healthy enough to finish what it has.
		status = http.StatusServiceUnavailable
		state = "draining"
	}
	writeJSON(w, status, struct {
		Status  string `json:"status"`
		Version string `json:"version"`
	}{state, buildinfo.Read().String()})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.scrapeGauges()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.metrics.write(w)
}

// scrapeGauges folds scrape-time snapshots into the registry: the
// process-wide trial singleflight's dedupe counters and, when a
// coordinator is attached, the distributed-execution families.
func (s *Server) scrapeGauges() {
	fs := s.flight.Stats()
	s.metrics.set("bgpd_flight_leads_total", fs.Leads)
	s.metrics.set("bgpd_flight_shared_total", fs.Shared)
	if s.cfg.Dist == nil {
		return
	}
	c := s.cfg.Dist.Counters()
	s.metrics.set("bgpd_dist_workers_live", c.WorkersLive)
	s.metrics.set("bgpd_dist_leases_outstanding", c.LeasesOutstanding)
	s.metrics.set("bgpd_dist_leases_granted_total", c.LeasesGranted)
	s.metrics.set("bgpd_dist_leases_reassigned_total", c.LeasesReassigned)
	s.metrics.set("bgpd_dist_leases_hedged_total", c.LeasesHedged)
	s.metrics.set("bgpd_dist_leases_completed_total", c.LeasesCompleted)
	s.metrics.set("bgpd_dist_leases_recovered_total", c.LeasesRecovered)
	s.metrics.set("bgpd_dist_duplicate_results_total", c.DuplicateResults)
	s.metrics.set("bgpd_dist_remote_trials_total", c.RemoteTrials)
	s.metrics.set("bgpd_dist_trial_errors_total", c.TrialErrors)
	s.metrics.set("bgpd_dist_log_errors_total", c.LogErrors)
	s.metrics.set("bgpd_dist_dropped_records_total", c.DroppedRecords)
}
