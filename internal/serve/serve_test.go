package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bgploop/internal/experiment"
	"bgploop/internal/sweep"
)

// newTestServer builds a Server with a real clock and small pools.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postRun(t *testing.T, ts *httptest.Server, body string) (*http.Response, JobView) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var v JobView
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, v
}

func getJob(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/runs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET run %s: status %d", id, resp.StatusCode)
	}
	var v JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	return v
}

func waitTerminal(t *testing.T, ts *httptest.Server, id string) JobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		v := getJob(t, ts, id)
		if v.State.terminal() {
			return v
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not reach a terminal state", id)
	return JobView{}
}

const cliqueBody = `{"spec": {"topology": {"family": "clique", "size": 6}, "event": "tdown", "seed": 5}, "trials": 2}`

// TestServedResultsMatchLocalRun is the e2e parity pin: the digests bgpd
// serves must equal the digests of the same scenario run directly
// through experiment.RunSweep (the engine behind bgpsim), and a repeat
// submission after completion must be served entirely from the cache
// while digesting identically.
func TestServedResultsMatchLocalRun(t *testing.T) {
	_, ts := newTestServer(t, Config{CacheDir: t.TempDir()})

	resp, v := postRun(t, ts, cliqueBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	v = waitTerminal(t, ts, v.ID)
	if v.State != StateDone {
		t.Fatalf("job state = %s (%s), want done", v.State, v.Error)
	}
	if v.Stats == nil || v.Stats.Executed != 2 {
		t.Fatalf("first run stats = %+v, want Executed=2", v.Stats)
	}

	// The oracle: the same spec through the library path.
	req, sc, rerr := ParseRunRequest(strings.NewReader(cliqueBody), Limits{})
	if rerr != nil {
		t.Fatal(rerr)
	}
	agg, results, _, err := experiment.RunSweep(experiment.Repeat(sc), req.Trials, experiment.SweepOptions{})
	if err != nil {
		t.Fatal(err)
	}
	wantAgg, err := experiment.DigestAggregate(agg)
	if err != nil {
		t.Fatal(err)
	}
	if v.AggregateDigest != wantAgg {
		t.Errorf("served aggregate digest %s != local %s", v.AggregateDigest, wantAgg)
	}
	if len(v.ResultDigests) != len(results) {
		t.Fatalf("served %d result digests, local has %d", len(v.ResultDigests), len(results))
	}
	for i, r := range results {
		want, err := experiment.DigestResult(r)
		if err != nil {
			t.Fatal(err)
		}
		if v.ResultDigests[i] != want {
			t.Errorf("trial %d: served digest %s != local %s", i, v.ResultDigests[i], want)
		}
	}

	// Warm-cache repeat: a fresh job, zero simulations, same digests.
	resp2, v2 := postRun(t, ts, cliqueBody)
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit status = %d, want 202 (completed jobs are not deduped)", resp2.StatusCode)
	}
	if v2.ID == v.ID {
		t.Fatal("second submission reused the completed job; want a fresh cache-served job")
	}
	v2 = waitTerminal(t, ts, v2.ID)
	if v2.State != StateDone {
		t.Fatalf("second job state = %s (%s)", v2.State, v2.Error)
	}
	// The checkpoint journal is probed before the content cache, so the
	// repeat lands as Resumed; either way the pin is zero re-simulation.
	if v2.Stats.Executed != 0 || v2.Stats.CacheHits+v2.Stats.Resumed != 2 {
		t.Fatalf("second run stats = %+v, want Executed=0 and 2 disk-served trials", v2.Stats)
	}
	if v2.AggregateDigest != wantAgg {
		t.Errorf("cache-served aggregate digest %s != local %s", v2.AggregateDigest, wantAgg)
	}
}

// blockingRunner swaps the sweep backend for one that parks until
// released, counting invocations.
type blockingRunner struct {
	started chan string
	release chan struct{}
	calls   atomic.Int64
}

func (b *blockingRunner) run(gen experiment.Generator, trials int, opts experiment.SweepOptions) (experiment.Aggregate, []*experiment.Result, sweep.Stats, error) {
	b.calls.Add(1)
	b.started <- "job"
	<-b.release
	return experiment.Aggregate{Trials: trials}, nil, sweep.Stats{Trials: trials}, nil
}

// TestOverloadDeterministic429 pins the admission bound: with one worker
// parked and the queue full, the next submission is refused with 429 and
// a Retry-After header — deterministically, not raceily.
func TestOverloadDeterministic429(t *testing.T) {
	br := &blockingRunner{started: make(chan string, 8), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 2})
	s.runSweep = br.run

	spec := func(seed int) string {
		return fmt.Sprintf(`{"spec": {"topology": {"family": "clique", "size": 4}, "event": "tdown", "seed": %d}}`, seed)
	}

	// First job occupies the worker...
	resp, _ := postRun(t, ts, spec(1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit 1 status = %d", resp.StatusCode)
	}
	<-br.started
	// ...two more fill the queue...
	for i := 2; i <= 3; i++ {
		if resp, _ := postRun(t, ts, spec(i)); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %d status = %d, want 202", i, resp.StatusCode)
		}
	}
	// ...and the fourth must bounce.
	resp4, _ := postRun(t, ts, spec(4))
	if resp4.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("submit 4 status = %d, want 429", resp4.StatusCode)
	}
	if resp4.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	close(br.release)
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := s.metrics.snapshotCounter("bgpd_admission_rejects_total"); got != 1 {
		t.Errorf("admission rejects = %d, want 1", got)
	}
}

// TestConcurrentIdenticalSubmissionsCollapse pins job-level singleflight:
// N identical concurrent POSTs produce one job ID and exactly one sweep
// execution.
func TestConcurrentIdenticalSubmissionsCollapse(t *testing.T) {
	br := &blockingRunner{started: make(chan string, 1), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{Workers: 2, QueueDepth: 8})
	s.runSweep = br.run

	const n = 8
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(cliqueBody))
			if err != nil {
				t.Error(err)
				return
			}
			defer func() { _ = resp.Body.Close() }()
			var v JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				t.Error(err)
				return
			}
			ids[i] = v.ID
		}(i)
	}
	wg.Wait()
	for _, id := range ids[1:] {
		if id != ids[0] {
			t.Fatalf("submissions landed on different jobs: %v", ids)
		}
	}
	close(br.release)
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	if got := br.calls.Load(); got != 1 {
		t.Errorf("sweep executions = %d, want exactly 1 for %d identical submissions", got, n)
	}
}

// TestDrainLeavesNoGoroutines pins the shutdown contract: after Drain
// returns, the worker pool and all stream followers are gone.
func TestDrainLeavesNoGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()

	s, ts := newTestServer(t, Config{Workers: 4, QueueDepth: 8, CacheDir: t.TempDir()})
	_, v := postRun(t, ts, `{"spec": {"topology": {"family": "clique", "size": 4}, "event": "tdown", "seed": 9}}`)
	// Attach a stream so a follower goroutine exists during the run.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
		if err != nil {
			return
		}
		defer func() { _ = resp.Body.Close() }()
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
		}
	}()
	waitTerminal(t, ts, v.ID)
	<-streamDone

	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("goroutines: %d before, %d after drain\n%s",
				before, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestEventStreamNDJSON walks a job's stream end to end: queued,
// started, one trial event per trial, terminal done.
func TestEventStreamNDJSON(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, v := postRun(t, ts, `{"spec": {"topology": {"family": "clique", "size": 4}, "event": "tdown", "seed": 3}, "trials": 2}`)

	resp, err := http.Get(ts.URL + "/v1/runs/" + v.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var types []string
	trials := 0
	scanner := bufio.NewScanner(resp.Body)
	for scanner.Scan() {
		var e Event
		if err := json.Unmarshal(scanner.Bytes(), &e); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		if e.Type == "trial" {
			trials++
			if e.Status != "done" || e.Source != "executed" {
				t.Errorf("trial event = %+v, want done/executed", e)
			}
			continue
		}
		types = append(types, e.Type)
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	if want := []string{"queued", "started", "done"}; !equalStrings(types, want) {
		t.Errorf("lifecycle events = %v, want %v", types, want)
	}
	if trials != 2 {
		t.Errorf("trial events = %d, want 2", trials)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

const badGadgetBody = `{"spec": {"topology": {"family": "clique", "size": 4}, "event": "tdown",
	"policy": "badGadget", "mraiSeconds": -1, "maxEvents": 30000}}`

// TestPreflightStrictRefuses pins the 422 refusal: a statically-UNSAFE
// submission never reaches the simulator under the default policy.
func TestPreflightStrictRefuses(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(badGadgetBody))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("status = %d, want 422", resp.StatusCode)
	}
	var body struct {
		Error *RequestError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Error == nil || body.Error.Code != "statically_unsafe" {
		t.Fatalf("error = %+v, want code statically_unsafe", body.Error)
	}
	if !strings.Contains(body.Error.Message, "dispute wheel") {
		t.Errorf("refusal message %q does not mention the dispute wheel", body.Error.Message)
	}
	if got := s.metrics.snapshotCounter("bgpd_preflight_refusals_total"); got != 1 {
		t.Errorf("preflight refusals = %d, want 1", got)
	}
}

// TestPreflightWarnAdmits pins the warn policy: the UNSAFE job is
// admitted with a warning and runs to its (failing, budget-capped) end.
func TestPreflightWarnAdmits(t *testing.T) {
	_, ts := newTestServer(t, Config{Preflight: PreflightWarn})
	resp, v := postRun(t, ts, badGadgetBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("status = %d, want 202", resp.StatusCode)
	}
	if !strings.Contains(v.Warning, "UNSAFE") {
		t.Errorf("warning = %q, want an UNSAFE notice", v.Warning)
	}
	v = waitTerminal(t, ts, v.ID)
	// BAD GADGET oscillates into its event budget: the trial fails, so
	// the job fails — but the server survives and reports it cleanly.
	if v.State != StateFailed {
		t.Fatalf("state = %s, want failed (non-quiescent oscillator)", v.State)
	}
	if v.Error == "" {
		t.Error("failed job carries no error text")
	}
}

// TestHealthzAndMetrics smoke-tests the operational endpoints.
func TestHealthzAndMetrics(t *testing.T) {
	s, ts := newTestServer(t, Config{CacheDir: t.TempDir()})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	_, v := postRun(t, ts, cliqueBody)
	waitTerminal(t, ts, v.ID)
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = mresp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(mresp.Body); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, want := range []string{
		"bgpd_submissions_total 1",
		"bgpd_jobs_completed_total 1",
		"bgpd_trials_executed_total 2",
		"bgpd_queue_depth",
		"bgpd_job_latency_seconds_run_bucket{le=\"+Inf\"} 1",
		"bgpd_job_latency_seconds_queue_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition is missing %q:\n%s", want, text)
		}
	}

	// Draining flips healthz to 503.
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining = %d, want 503", hresp.StatusCode)
	}
}

// TestSubmitAfterDrainRefused pins the draining admission path.
func TestSubmitAfterDrainRefused(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	if err := s.Drain(t.Context()); err != nil {
		t.Fatal(err)
	}
	resp, _ := postRun(t, ts, cliqueBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", resp.StatusCode)
	}
}
