package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"syscall"
	"testing"
	"time"

	"bgploop/internal/durable"
)

// drainServer drains s with a generous deadline.
func drainServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
}

// TestWALRestartServesTerminalJob pins the restart-surviving GET: a job
// that finished before the restart keeps answering GET /v1/runs/{id}
// with the same state, digests, and stats from the recovered table.
func TestWALRestartServesTerminalJob(t *testing.T) {
	store := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: store})
	_, v := postRun(t, ts1, cliqueBody)
	v = waitTerminal(t, ts1, v.ID)
	if v.State != StateDone || v.AggregateDigest == "" {
		t.Fatalf("job = %+v, want done with a digest", v)
	}
	drainServer(t, s1)
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StoreDir: store})
	rec := s2.Recovery()
	if rec.Restored != 1 || rec.Replayed != 0 {
		t.Fatalf("recovery = %+v, want 1 restored / 0 replayed", rec)
	}
	got := getJob(t, ts2, v.ID)
	if got.State != StateDone {
		t.Fatalf("restored state = %s, want done", got.State)
	}
	if got.AggregateDigest != v.AggregateDigest {
		t.Errorf("restored aggregate digest %s != original %s", got.AggregateDigest, v.AggregateDigest)
	}
	if len(got.ResultDigests) != len(v.ResultDigests) {
		t.Errorf("restored %d result digests, want %d", len(got.ResultDigests), len(v.ResultDigests))
	}
	if got.Stats == nil || got.Stats.Trials != v.Stats.Trials {
		t.Errorf("restored stats = %+v, want trials %d", got.Stats, v.Stats.Trials)
	}
	// A fresh submission on the recovered server continues the id
	// sequence instead of colliding with the restored job.
	resp, v2 := postRun(t, ts2, cliqueBody)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("post-restart submit status = %d", resp.StatusCode)
	}
	if v2.ID == v.ID {
		t.Fatalf("post-restart job reused id %s", v2.ID)
	}
	waitTerminal(t, ts2, v2.ID)
	drainServer(t, s2)
}

// TestWALReplaysIncompleteJob: a job record with no terminal state —
// exactly what a SIGKILL mid-run leaves behind — is re-enqueued at
// startup, runs to completion, and serves the same digests a clean run
// would.
func TestWALReplaysIncompleteJob(t *testing.T) {
	store := t.TempDir()

	// Forge the crashed daemon's WAL: one accepted job, marked running,
	// never finished.
	req, _, rerr := ParseRunRequest(strings.NewReader(cliqueBody), Limits{})
	if rerr != nil {
		t.Fatal(rerr)
	}
	spec, err := json.Marshal(req.Spec)
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := durable.OpenWAL(nil, walPath(store))
	if err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(durable.Record{Type: "job", Job: "job-000007", Key: "k/trials=2", Trials: req.Trials, Spec: spec}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Append(durable.Record{Type: "state", Job: "job-000007", State: string(StateRunning)}); err != nil {
		t.Fatal(err)
	}
	if err := wal.Close(); err != nil {
		t.Fatal(err)
	}

	s, ts := newTestServer(t, Config{StoreDir: store})
	if rec := s.Recovery(); rec.Replayed != 1 || rec.Restored != 0 {
		t.Fatalf("recovery = %+v, want 1 replayed", rec)
	}
	v := waitTerminal(t, ts, "job-000007")
	if v.State != StateDone {
		t.Fatalf("replayed job state = %s (%s), want done", v.State, v.Error)
	}
	if v.AggregateDigest == "" || v.Stats == nil || v.Stats.Trials != 2 {
		t.Fatalf("replayed job = %+v, want a digested 2-trial run", v)
	}
	// New ids start above everything the WAL named.
	_, v2 := postRun(t, ts, cliqueBody)
	if n, ok := jobIDNumber(v2.ID); !ok || n <= 7 {
		t.Fatalf("post-recovery id %s does not continue past job-000007", v2.ID)
	}
	waitTerminal(t, ts, v2.ID)
	drainServer(t, s)

	// Second restart: the job is now terminal — restored, not replayed.
	s2, _ := newTestServer(t, Config{StoreDir: store})
	if rec := s2.Recovery(); rec.Replayed != 0 || rec.Restored != 2 {
		t.Fatalf("second recovery = %+v, want 2 restored", rec)
	}
	drainServer(t, s2)
}

// TestWALSubmitRefusedOnStorageFault: when the fsynced admission append
// fails (disk full), the submission is refused with a structured 507 —
// the server never acknowledges a job it cannot make durable.
func TestWALSubmitRefusedOnStorageFault(t *testing.T) {
	// Op sequence on the WAL sync class: seq 0 is the startup
	// compaction's fsync; seq 1 is the first submission's append fsync.
	fsys := durable.NewFaultFS(nil, []durable.Fault{{Op: durable.OpSync, Seq: 1, Kind: durable.FaultENOSPC}})
	s, ts := newTestServer(t, Config{StoreDir: t.TempDir(), FS: fsys})

	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(cliqueBody))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusInsufficientStorage {
		t.Fatalf("submit status = %d, want 507", resp.StatusCode)
	}
	var re struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&re); err != nil {
		t.Fatal(err)
	}
	if re.Error.Code != "wal_error" || !strings.Contains(re.Error.Message, syscall.ENOSPC.Error()) {
		t.Fatalf("error body = %+v, want wal_error carrying ENOSPC", re)
	}
	// The fault was one-shot: the next submission succeeds and gets the
	// id the refused one gave back.
	resp2, v := postRun(t, ts, cliqueBody)
	if resp2.StatusCode != http.StatusAccepted || v.ID != "job-000001" {
		t.Fatalf("retry = %d %q, want 202 job-000001", resp2.StatusCode, v.ID)
	}
	waitTerminal(t, ts, v.ID)
	drainServer(t, s)

	// Metrics surfaced the storage error.
	if got := s.metrics.snapshotCounter("bgpd_wal_errors_total"); got != 1 {
		t.Errorf("bgpd_wal_errors_total = %d, want 1", got)
	}
}

// TestWALAbortedSubmissionNotResurrected: a submission whose WAL record
// landed but whose enqueue was refused (queue full, client saw 429) is
// marked aborted and never comes back on restart.
func TestWALAbortedSubmissionNotResurrected(t *testing.T) {
	store := t.TempDir()
	br := &blockingRunner{started: make(chan string, 8), release: make(chan struct{})}
	s, ts := newTestServer(t, Config{StoreDir: store, Workers: 1, QueueDepth: 1})
	s.runSweep = br.run

	spec := func(seed int) string {
		return fmt.Sprintf(`{"spec": {"topology": {"family": "clique", "size": 4}, "event": "tdown", "seed": %d}}`, seed)
	}
	// Fill the worker and the queue, then overflow.
	if resp, _ := postRun(t, ts, spec(1)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: %d", resp.StatusCode)
	}
	<-br.started
	if resp, _ := postRun(t, ts, spec(2)); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit: %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+"/v1/runs", "application/json", strings.NewReader(spec(3)))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	close(br.release)
	drainServer(t, s)
	ts.Close()

	s2, _ := newTestServer(t, Config{StoreDir: store})
	defer drainServer(t, s2)
	rec := s2.Recovery()
	if rec.Replayed != 0 {
		t.Errorf("recovery re-enqueued %d jobs; the aborted submission must stay dead", rec.Replayed)
	}
	s2.mu.Lock()
	n := len(s2.jobs)
	s2.mu.Unlock()
	if n != 2 {
		t.Errorf("recovered table has %d jobs, want the 2 acknowledged ones", n)
	}
}

// TestWALRecoveryToleratesTornTail: a WAL whose final record is cut in
// half (the kill landed mid-append) still recovers everything whole,
// and the startup compaction rewrites the log clean.
func TestWALRecoveryToleratesTornTail(t *testing.T) {
	store := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: store})
	_, v := postRun(t, ts1, cliqueBody)
	waitTerminal(t, ts1, v.ID)
	drainServer(t, s1)
	ts1.Close()

	// Append half a record, as a crash mid-append would.
	full, err := durable.EncodeRecord(durable.Record{Type: "state", Job: v.ID, State: "running"})
	if err != nil {
		t.Fatal(err)
	}
	wal, _, err := durable.OpenWAL(nil, walPath(store))
	if err != nil {
		t.Fatal(err)
	}
	// Reach under the WAL abstraction: write raw torn bytes.
	_ = wal.Close()
	appendRaw(t, walPath(store), full[:len(full)/2])

	s2, ts2 := newTestServer(t, Config{StoreDir: store})
	defer drainServer(t, s2)
	rec := s2.Recovery()
	if rec.DroppedRecords != 1 {
		t.Errorf("recovery dropped %d records, want the 1 torn tail", rec.DroppedRecords)
	}
	got := getJob(t, ts2, v.ID)
	if got.State != StateDone {
		t.Errorf("job state after torn-tail recovery = %s, want done", got.State)
	}
	if rec.WALBytes <= 0 {
		t.Errorf("WALBytes = %d, want a positive compacted size", rec.WALBytes)
	}
}

// TestWALMetricsExposed: the recovery counters and WAL size are on
// /metrics.
func TestWALMetricsExposed(t *testing.T) {
	store := t.TempDir()
	s1, ts1 := newTestServer(t, Config{StoreDir: store})
	_, v := postRun(t, ts1, cliqueBody)
	waitTerminal(t, ts1, v.ID)
	drainServer(t, s1)
	ts1.Close()

	s2, ts2 := newTestServer(t, Config{StoreDir: store})
	defer drainServer(t, s2)
	resp, err := http.Get(ts2.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, want := range []string{
		"bgpd_wal_jobs_replayed_total 0",
		"bgpd_wal_jobs_restored_total 1",
		"bgpd_wal_records_dropped_total 0",
		"bgpd_wal_bytes ",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// appendRaw appends raw bytes to a file outside the WAL API.
func appendRaw(t *testing.T, path string, data []byte) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}
