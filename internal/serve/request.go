package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"bgploop/internal/experiment"
)

// Limits bounds what a single submission may ask of the server. Zero
// fields take the Default* constants.
type Limits struct {
	// MaxNodes caps the materialized topology size (and, pre-build, the
	// spec's size parameter, so a hostile spec cannot make the server
	// generate a huge graph just to reject it).
	MaxNodes int
	// MaxTrials caps the per-job trial count.
	MaxTrials int
	// MaxBodyBytes caps the request body size.
	MaxBodyBytes int64
}

// Default request limits.
const (
	DefaultMaxNodes     = 64
	DefaultMaxTrials    = 256
	DefaultMaxBodyBytes = 1 << 20
)

func (l Limits) withDefaults() Limits {
	if l.MaxNodes <= 0 {
		l.MaxNodes = DefaultMaxNodes
	}
	if l.MaxTrials <= 0 {
		l.MaxTrials = DefaultMaxTrials
	}
	if l.MaxBodyBytes <= 0 {
		l.MaxBodyBytes = DefaultMaxBodyBytes
	}
	return l
}

// RunRequest is the body of POST /v1/runs: a scenario spec — the same
// schema bgpsim -scenario reads, see experiment.ScenarioSpec — plus the
// trial count. Trials replicate the scenario with per-trial seeds
// (seed, seed+1, ...), exactly like `bgpsim -trials`.
type RunRequest struct {
	Spec   experiment.ScenarioSpec `json:"spec"`
	Trials int                     `json:"trials,omitempty"`
}

// RequestError is a structured admission failure: an HTTP status, a
// stable machine-readable code, and human-readable detail. It renders as
// {"error": {"code": ..., "message": ...}}.
type RequestError struct {
	Status  int    `json:"-"`
	Code    string `json:"code"`
	Message string `json:"message"`
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("%s: %s", e.Code, e.Message)
}

// writeTo renders the error response.
func (e *RequestError) writeTo(w http.ResponseWriter) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(e.Status)
	_ = json.NewEncoder(w).Encode(struct {
		Error *RequestError `json:"error"`
	}{e})
}

func badRequest(code, format string, args ...any) *RequestError {
	return &RequestError{Status: http.StatusBadRequest, Code: code, Message: fmt.Sprintf(format, args...)}
}

// ParseRunRequest decodes and validates a POST /v1/runs body under the
// given limits, returning the request and the materialized scenario.
// Every failure is a structured *RequestError — malformed JSON, unknown
// fields, forbidden topology families, oversized topologies or trial
// counts, and specs that do not materialize all map to 400s; nothing
// panics (FuzzRunRequest pins that).
func ParseRunRequest(body io.Reader, limits Limits) (*RunRequest, experiment.Scenario, *RequestError) {
	limits = limits.withDefaults()

	dec := json.NewDecoder(io.LimitReader(body, limits.MaxBodyBytes+1))
	dec.DisallowUnknownFields()
	var req RunRequest
	if err := dec.Decode(&req); err != nil {
		if errors.Is(err, io.ErrUnexpectedEOF) || errors.Is(err, io.EOF) {
			return nil, experiment.Scenario{}, badRequest("bad_json", "request body is truncated or empty")
		}
		return nil, experiment.Scenario{}, badRequest("bad_json", "decode request: %v", err)
	}
	// A second value after the first JSON document is a client bug.
	if dec.More() {
		return nil, experiment.Scenario{}, badRequest("bad_json", "trailing data after request object")
	}

	switch {
	case req.Trials < 0:
		return nil, experiment.Scenario{}, badRequest("bad_trials", "negative trial count %d", req.Trials)
	case req.Trials == 0:
		req.Trials = 1
	case req.Trials > limits.MaxTrials:
		return nil, experiment.Scenario{}, badRequest("too_many_trials", "%d trials exceeds the limit of %d", req.Trials, limits.MaxTrials)
	}

	// The "file" family reads from the server's filesystem — never
	// acceptable from a network request.
	if req.Spec.Topology.Family == "file" {
		return nil, experiment.Scenario{}, badRequest("forbidden_family", "topology family %q is not accepted over the API", "file")
	}
	// Pre-build size guard: generated families would otherwise build the
	// oversized graph before the post-build node check rejects it.
	if req.Spec.Topology.Size > limits.MaxNodes {
		return nil, experiment.Scenario{}, badRequest("too_large", "topology size %d exceeds the limit of %d nodes", req.Spec.Topology.Size, limits.MaxNodes)
	}
	if n := len(req.Spec.Topology.Edges); n > limits.MaxNodes*limits.MaxNodes {
		return nil, experiment.Scenario{}, badRequest("too_large", "%d topology edges exceed the limit of %d", n, limits.MaxNodes*limits.MaxNodes)
	}

	s, err := req.Spec.Scenario()
	if err != nil {
		return nil, experiment.Scenario{}, badRequest("bad_scenario", "%v", err)
	}
	if n := s.Graph.NumNodes(); n > limits.MaxNodes {
		return nil, experiment.Scenario{}, badRequest("too_large", "topology has %d nodes, limit is %d", n, limits.MaxNodes)
	}
	return &req, s, nil
}
