// Package sweep is the deterministic parallel sweep executor: it fans
// independent trials out across a bounded worker pool while guaranteeing
// byte-identical output to a sequential run.
//
// The DES kernel underneath every trial is strictly single-threaded (the
// detlint noconcurrency analyzer enforces it); scale comes from running
// independent trial instances concurrently, exactly the decomposition of
// Coudert et al.'s feasibility study on distributed BGP simulations.
// Each trial is a self-contained deterministic run keyed by its index, so
// the executor only has to make the *orchestration* order-insensitive:
//
//   - trials are dispatched to workers in ascending index order;
//   - every result is merged back into an index-addressed slot, so the
//     merged output is in trial order regardless of completion order;
//   - all failure policy (fail-fast index, failure-ratio abort) is
//     defined over trial indices, never over wall-clock completion order.
//
// With Workers == 1 the executor runs the trials inline in the calling
// goroutine — no goroutines, no channels — which is the sequential
// regression oracle: `-j N` must produce byte-identical results to it.
//
// On top of the executor sit two persistence layers:
//
//   - Cache: a content-addressed result store keyed by a canonical digest
//     of everything that determines a trial's outcome (see
//     experiment.Scenario.CacheKey). Unchanged trials in a re-run sweep
//     are served from disk instead of re-simulated.
//   - Journal: an append-only checkpoint of completed trials, so an
//     interrupted sweep restarts from where it stopped (Resume).
//
// This package is the concurrency boundary of the repository: it is the
// only simulation-adjacent package allowed to spawn goroutines (detlint's
// "harness" scope: checked by norealtime, noglobalrand, maprange and
// floateq, exempt from noconcurrency).
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
)

// Status is the terminal state of one trial slot.
type Status uint8

const (
	// StatusSkipped marks a trial that was never started (aborted sweep).
	StatusSkipped Status = iota
	// StatusDone marks a trial with a usable result (executed, cached, or
	// resumed from the journal).
	StatusDone
	// StatusFailed marks a trial whose task returned a non-cancellation
	// error.
	StatusFailed
	// StatusCanceled marks a trial interrupted by context cancellation.
	StatusCanceled
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusSkipped:
		return "skipped"
	case StatusDone:
		return "done"
	case StatusFailed:
		return "failed"
	case StatusCanceled:
		return "canceled"
	default:
		return fmt.Sprintf("Status(%d)", uint8(s))
	}
}

// Source records where a done trial's result came from.
type Source uint8

const (
	// SourceNone is the zero value for trials without a result.
	SourceNone Source = iota
	// SourceExecuted means the trial was simulated by this run.
	SourceExecuted
	// SourceCache means the result was served from the content-addressed
	// cache.
	SourceCache
	// SourceJournal means the result was replayed from a resume journal.
	SourceJournal
	// SourceFlight means the result was shared from a concurrent
	// execution of the same content address (Options.Flight singleflight).
	SourceFlight
	// SourceRemote means the trial was satisfied by the remote executor
	// seam (Options.Remote) — typically a distributed worker fleet —
	// instead of running in this process.
	SourceRemote
)

// Task runs trial i and returns its result. The context is per-trial:
// it is canceled when the sweep aborts (fail-fast failure elsewhere,
// failure-ratio doom, or parent cancellation), and tasks should poll it
// at convenient boundaries so in-flight work stops instead of running to
// completion. A task signals cancellation by returning an error that
// wraps context.Canceled or context.DeadlineExceeded.
type Task[T any] func(ctx context.Context, trial int) (T, error)

// Codec serializes results for the cache and the journal.
type Codec[T any] struct {
	// Key returns the canonical content-address of trial i, or "" when
	// the trial is not cacheable (the trial then always executes and is
	// never journaled). Key must be a deterministic function of
	// everything that determines the trial's result.
	Key func(trial int) string
	// Encode and Decode round-trip a result. Decode(Encode(v)) must
	// reproduce a value whose re-encoding is byte-identical, so digests
	// computed over decoded results match digests over fresh ones.
	Encode func(v T) ([]byte, error)
	Decode func(data []byte) (T, error)
}

// enabled reports whether the codec can persist results.
func (c Codec[T]) enabled() bool {
	return c.Key != nil && c.Encode != nil && c.Decode != nil
}

// Options tunes one executor run.
type Options[T any] struct {
	// Workers is the worker-pool width: 0 means GOMAXPROCS, 1 runs the
	// trials inline in the calling goroutine (the sequential oracle).
	Workers int
	// FailFast stops the sweep at the lowest failed trial index: trials
	// above it are skipped or canceled and discarded, reproducing the
	// sequential stop-at-first-failure semantics.
	FailFast bool
	// MaxFailureRatio, when positive, aborts the sweep as soon as the
	// failure count alone guarantees failed/attempted will exceed the
	// ratio (failures > ratio × trials): the remaining trials cannot
	// save the sweep, so in-flight workers are canceled instead of
	// running to completion. Zero disables the early abort.
	MaxFailureRatio float64
	// Codec enables the cache and journal layers; the zero Codec
	// disables both.
	Codec Codec[T]
	// Cache, when non-nil, serves unchanged trials from disk and stores
	// fresh results. Requires Codec.
	Cache *Cache
	// Journal, when non-nil, appends every completed trial so an
	// interrupted sweep can resume. Requires Codec. The journal's
	// preloaded entries (opened with resume=true) are replayed before
	// anything executes.
	Journal *Journal
	// Flight, when non-nil, collapses concurrent executions of the same
	// content address — across this sweep and every other sweep sharing
	// the Flight — onto one run. Requires Codec (sharing moves encoded
	// bytes between callers). Trials without a key never share.
	Flight *Flight
	// Remote is the pluggable trial-executor seam: when non-nil, trials
	// that have a content address are satisfied by calling Remote —
	// which returns the trial's encoded result bytes, e.g. from a
	// distributed worker fleet (internal/dist) — instead of running the
	// Task in this process. Trials without a key have no content address
	// to prove equality across machines, so they always run locally.
	// Requires a complete Codec; the returned bytes are decoded through
	// it, and the Codec round-trip contract makes the merged output
	// byte-identical to a local run. Remote executions still route
	// through the Flight when one is configured, so concurrent sweeps
	// wanting the same content address share one remote execution.
	Remote func(ctx context.Context, trial int, key string) ([]byte, error)
	// Progress, when non-nil, is called from the merging goroutine after
	// each trial reaches a terminal state, in completion order. It must
	// not block for long; it runs on the sweep's critical path.
	Progress func(trial int, st Status, src Source)
}

// Stats counts what the executor did.
type Stats struct {
	// Trials is the sweep width; Executed counts trials actually
	// simulated by this run.
	Trials   int
	Executed int
	// CacheHits / CacheMisses count cache probes; Resumed counts trials
	// replayed from the journal; Deduped counts trials whose result was
	// shared from a concurrent in-flight execution of the same content
	// address (Options.Flight) instead of being simulated here; Remote
	// counts trials satisfied by the remote executor seam
	// (Options.Remote) rather than this process.
	CacheHits   int
	CacheMisses int
	Resumed     int
	Deduped     int
	Remote      int
	// Quarantined counts cache objects that failed to decode and were
	// moved to the cache's quarantine directory instead of being treated
	// as silent misses.
	Quarantined int
	// Failed, Canceled, and Skipped count the non-Done terminal states.
	Failed   int
	Canceled int
	Skipped  int
}

// Add accumulates other into s (for multi-sweep tooling like bgpfig).
func (s *Stats) Add(other Stats) {
	s.Trials += other.Trials
	s.Executed += other.Executed
	s.CacheHits += other.CacheHits
	s.CacheMisses += other.CacheMisses
	s.Resumed += other.Resumed
	s.Deduped += other.Deduped
	s.Remote += other.Remote
	s.Quarantined += other.Quarantined
	s.Failed += other.Failed
	s.Canceled += other.Canceled
	s.Skipped += other.Skipped
}

// CacheHitRatio returns CacheHits/(CacheHits+CacheMisses), or 0 when the
// cache was never probed. It is the ratio the bgpd /metrics endpoint
// exposes.
func (s Stats) CacheHitRatio() float64 {
	probes := s.CacheHits + s.CacheMisses
	if probes == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(probes)
}

// Outcome is the merged, trial-ordered result of a sweep. All slices are
// indexed by trial.
type Outcome[T any] struct {
	Results []T
	Errs    []error
	Status  []Status
	Source  []Source
	Stats   Stats
}

// Done reports whether trial i produced a usable result.
func (o *Outcome[T]) Done(i int) bool { return o.Status[i] == StatusDone }

// FirstFailure returns the lowest failed trial index, or -1.
func (o *Outcome[T]) FirstFailure() int {
	for i, st := range o.Status {
		if st == StatusFailed {
			return i
		}
	}
	return -1
}

// canceledErr reports whether err is a cancellation, possibly wrapped.
func canceledErr(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// Run executes trials 0..trials-1 through task under the given options
// and returns the trial-ordered outcome. Run itself returns an error only
// for harness problems (bad arguments, persistence failures); trial
// failures and cancellations are reported per-slot in the Outcome so the
// caller can apply its own partial-result policy.
func Run[T any](ctx context.Context, trials int, task Task[T], opts Options[T]) (*Outcome[T], error) {
	if trials <= 0 {
		return nil, fmt.Errorf("sweep: non-positive trial count %d", trials)
	}
	if task == nil {
		return nil, errors.New("sweep: nil task")
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if (opts.Cache != nil || opts.Journal != nil) && !opts.Codec.enabled() {
		return nil, errors.New("sweep: cache/journal require a complete Codec")
	}
	if opts.Flight != nil && !opts.Codec.enabled() {
		return nil, errors.New("sweep: singleflight requires a complete Codec")
	}
	if opts.Remote != nil && !opts.Codec.enabled() {
		return nil, errors.New("sweep: remote execution requires a complete Codec")
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	out := &Outcome[T]{
		Results: make([]T, trials),
		Errs:    make([]error, trials),
		Status:  make([]Status, trials),
		Source:  make([]Source, trials),
		Stats:   Stats{Trials: trials},
	}

	// Content addresses, computed once and shared by the journal and the
	// cache.
	keys := make([]string, trials)
	if opts.Codec.enabled() {
		for i := range keys {
			keys[i] = opts.Codec.Key(i)
		}
	}

	// Replay the resume journal: a journaled result is reused only when
	// its content address still matches, so a changed scenario spec
	// invalidates stale checkpoints per trial.
	if opts.Journal != nil {
		for i := 0; i < trials; i++ {
			if keys[i] == "" {
				continue
			}
			data, ok := opts.Journal.Lookup(i, keys[i])
			if !ok {
				continue
			}
			v, err := opts.Codec.Decode(data)
			if err != nil {
				// A corrupt entry (e.g. a torn write from a kill) is
				// ignored; the trial simply re-executes.
				continue
			}
			out.Results[i], out.Status[i], out.Source[i] = v, StatusDone, SourceJournal
			out.Stats.Resumed++
		}
	}

	// Probe the content-addressed cache for the rest.
	if opts.Cache != nil {
		for i := 0; i < trials; i++ {
			if out.Status[i] == StatusDone || keys[i] == "" {
				continue
			}
			data, ok, err := opts.Cache.Get(keys[i])
			if err != nil {
				return nil, fmt.Errorf("sweep: cache read trial %d: %w", i, err)
			}
			if !ok {
				out.Stats.CacheMisses++
				continue
			}
			v, err := opts.Codec.Decode(data)
			if err != nil {
				// Corrupt object: quarantine the evidence (visible in stats
				// and /metrics), then treat the probe as a miss so the trial
				// re-executes and writes a fresh object.
				if qerr := opts.Cache.Quarantine(keys[i]); qerr != nil {
					return nil, fmt.Errorf("sweep: quarantine trial %d: %w", i, qerr)
				}
				out.Stats.Quarantined++
				out.Stats.CacheMisses++
				continue
			}
			out.Results[i], out.Status[i], out.Source[i] = v, StatusDone, SourceCache
			out.Stats.CacheHits++
			if err := persist(opts, i, keys[i], data, false); err != nil {
				return nil, err
			}
			if opts.Progress != nil {
				opts.Progress(i, StatusDone, SourceCache)
			}
		}
	}

	// Everything still pending executes, in ascending index order.
	var pending []int
	for i := 0; i < trials; i++ {
		if out.Status[i] != StatusDone {
			pending = append(pending, i)
		}
	}

	ctl := &controller{
		failFast:   opts.FailFast,
		failFastAt: -1,
		maxRatio:   opts.MaxFailureRatio,
		trials:     trials,
		cancels:    make([]context.CancelFunc, trials),
	}

	var runErr error
	if workers == 1 {
		runErr = runInline(ctx, task, opts, out, ctl, pending, keys)
	} else {
		runErr = runPool(ctx, task, opts, out, ctl, pending, keys, workers)
	}
	if runErr != nil {
		return nil, runErr
	}

	for i := 0; i < trials; i++ {
		switch out.Status[i] {
		case StatusFailed:
			out.Stats.Failed++
		case StatusCanceled:
			out.Stats.Canceled++
		case StatusSkipped:
			out.Stats.Skipped++
		case StatusDone:
			switch out.Source[i] {
			case SourceExecuted:
				out.Stats.Executed++
			case SourceFlight:
				out.Stats.Deduped++
			case SourceRemote:
				out.Stats.Remote++
			}
		}
	}
	return out, nil
}

// persist stores one completed trial in the journal and, when fresh, the
// cache. It is always called from the single merging goroutine, so the
// underlying appends need no locking beyond the file itself.
func persist[T any](opts Options[T], trial int, key string, data []byte, fresh bool) error {
	if key == "" || data == nil {
		return nil
	}
	if opts.Journal != nil {
		if err := opts.Journal.Append(trial, key, data); err != nil {
			return fmt.Errorf("sweep: journal trial %d: %w", trial, err)
		}
	}
	if fresh && opts.Cache != nil {
		if err := opts.Cache.Put(key, data); err != nil {
			return fmt.Errorf("sweep: cache write trial %d: %w", trial, err)
		}
	}
	return nil
}

// merge records one completed trial into the outcome and applies the
// failure policy. execSrc is SourceExecuted for trials this sweep ran
// itself and SourceFlight for results shared from a concurrent execution.
// Called only from the merging goroutine.
func merge[T any](opts Options[T], out *Outcome[T], ctl *controller, trial int, key string, v T, execSrc Source, err error) error {
	src := SourceNone
	switch {
	case err == nil:
		out.Results[trial], out.Status[trial], out.Source[trial] = v, StatusDone, execSrc
		src = execSrc
		data, encErr := encodeFor(opts, v)
		if encErr != nil {
			return fmt.Errorf("sweep: encode trial %d: %w", trial, encErr)
		}
		if err := persist(opts, trial, key, data, true); err != nil {
			return err
		}
	case canceledErr(err):
		out.Errs[trial], out.Status[trial] = err, StatusCanceled
	default:
		out.Errs[trial], out.Status[trial] = err, StatusFailed
		ctl.noteFailure(trial)
	}
	if opts.Progress != nil {
		opts.Progress(trial, out.Status[trial], src)
	}
	return nil
}

// encodeFor serializes v when persistence is configured.
func encodeFor[T any](opts Options[T], v T) ([]byte, error) {
	if !opts.Codec.enabled() || (opts.Cache == nil && opts.Journal == nil) {
		return nil, nil
	}
	return opts.Codec.Encode(v)
}

// runInline is the Workers == 1 path: no goroutines, trials execute in
// index order in the calling goroutine. This is the sequential regression
// oracle the parallel pool must match byte for byte.
func runInline[T any](ctx context.Context, task Task[T], opts Options[T], out *Outcome[T], ctl *controller, pending []int, keys []string) error {
	for _, i := range pending {
		if err := ctx.Err(); err != nil {
			out.Errs[i], out.Status[i] = err, StatusCanceled
			if opts.Progress != nil {
				opts.Progress(i, StatusCanceled, SourceNone)
			}
			continue
		}
		if ctl.shouldSkip(i) {
			out.Status[i] = StatusSkipped
			if opts.Progress != nil {
				opts.Progress(i, StatusSkipped, SourceNone)
			}
			continue
		}
		v, src, err := executeTrial(ctx, task, opts, i, keys[i])
		if merr := merge(opts, out, ctl, i, keys[i], v, src, err); merr != nil {
			return merr
		}
	}
	return nil
}

// executeTrial runs one trial, routing it through the singleflight when a
// Flight and a content address are available. The leader's own value is
// returned directly; a follower decodes the shared bytes (byte-identical
// on re-encode per the Codec contract, so sharing never changes digests)
// and is marked SourceFlight. Errors are never shared — a failed or
// canceled leader makes the follower execute the trial itself.
//
// When Options.Remote is set and the trial has a content address, the
// execution (leader or direct) is satisfied by the remote seam instead of
// the local task; a remote payload that fails to decode falls back to
// local execution (byte-identical by determinism), mirroring the cache's
// corrupt-object-is-a-miss policy.
func executeTrial[T any](ctx context.Context, task Task[T], opts Options[T], i int, key string) (T, Source, error) {
	if opts.Flight == nil || key == "" {
		if opts.Remote != nil && key != "" {
			return executeRemote(ctx, task, opts, i, key)
		}
		v, err := task(ctx, i)
		return v, SourceExecuted, err
	}
	var (
		leaderV   T
		isLeader  bool
		leaderSrc = SourceExecuted
	)
	data, shared, err := opts.Flight.Do(ctx, key, func() ([]byte, error) {
		if opts.Remote != nil {
			v, src, data, err := remoteBytes(ctx, task, opts, i, key)
			if err != nil {
				return nil, err
			}
			leaderV, isLeader, leaderSrc = v, true, src
			return data, nil
		}
		v, err := task(ctx, i)
		if err != nil {
			return nil, err
		}
		data, err := opts.Codec.Encode(v)
		if err != nil {
			return nil, err
		}
		leaderV, isLeader = v, true
		return data, nil
	})
	switch {
	case err != nil:
		var zero T
		return zero, SourceExecuted, err
	case isLeader:
		return leaderV, leaderSrc, nil
	case shared:
		v, err := opts.Codec.Decode(data)
		if err != nil {
			// A shared payload that does not decode falls back to direct
			// execution, mirroring the cache's corrupt-object-is-a-miss
			// policy.
			v, err := task(ctx, i)
			return v, SourceExecuted, err
		}
		return v, SourceFlight, nil
	default:
		// Unreachable: a nil error from Do means either this caller led
		// the execution or the payload was shared.
		v, err := task(ctx, i)
		return v, SourceExecuted, err
	}
}

// executeRemote satisfies one trial through the remote seam without a
// Flight.
func executeRemote[T any](ctx context.Context, task Task[T], opts Options[T], i int, key string) (T, Source, error) {
	v, src, _, err := remoteBytes(ctx, task, opts, i, key)
	if err != nil {
		var zero T
		return zero, SourceExecuted, err
	}
	return v, src, nil
}

// remoteBytes calls Options.Remote for trial i and decodes the payload.
// Undecodable bytes (a worker bug, not a determinism question) degrade to
// local execution; remote errors — including cancellation — propagate,
// because the remote layer owns its own retry and reassignment policy and
// its errors are final.
func remoteBytes[T any](ctx context.Context, task Task[T], opts Options[T], i int, key string) (T, Source, []byte, error) {
	data, err := opts.Remote(ctx, i, key)
	if err != nil {
		var zero T
		return zero, SourceExecuted, nil, err
	}
	v, err := opts.Codec.Decode(data)
	if err == nil {
		return v, SourceRemote, data, nil
	}
	v, err = task(ctx, i)
	if err != nil {
		var zero T
		return zero, SourceExecuted, nil, err
	}
	data, err = opts.Codec.Encode(v)
	if err != nil {
		var zero T
		return zero, SourceExecuted, nil, err
	}
	return v, SourceExecuted, data, nil
}

// runPool is the parallel path: a feeder hands ascending indices to
// `workers` goroutines; the calling goroutine merges completions. The
// only shared mutable state is the controller (mutex-guarded) and the
// channels; results land in index-addressed slots, so merged output is
// independent of completion order.
func runPool[T any](ctx context.Context, task Task[T], opts Options[T], out *Outcome[T], ctl *controller, pending []int, keys []string, workers int) error {
	if workers > len(pending) {
		workers = len(pending)
	}
	if len(pending) == 0 {
		return nil
	}

	type completion struct {
		trial int
		v     T
		src   Source
		err   error
		skip  bool
	}
	idxCh := make(chan int)
	resCh := make(chan completion, workers)

	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idxCh {
				if ctl.shouldSkip(i) {
					resCh <- completion{trial: i, skip: true}
					continue
				}
				tctx, cancel := context.WithCancel(ctx)
				ctl.register(i, cancel)
				v, src, err := executeTrial(tctx, task, opts, i, keys[i])
				ctl.unregister(i)
				cancel()
				resCh <- completion{trial: i, v: v, src: src, err: err}
			}
		}()
	}
	// The feeder owns idxCh; it always sends every pending index (workers
	// turn aborted indices into cheap skips), so the merger below receives
	// exactly len(pending) completions.
	go func() {
		defer close(idxCh)
		for _, i := range pending {
			idxCh <- i
		}
	}()

	var mergeErr error
	for range pending {
		c := <-resCh
		if mergeErr != nil {
			continue // drain; first error wins
		}
		if c.skip {
			out.Status[c.trial] = StatusSkipped
			if opts.Progress != nil {
				opts.Progress(c.trial, StatusSkipped, SourceNone)
			}
			continue
		}
		mergeErr = merge(opts, out, ctl, c.trial, keys[c.trial], c.v, c.src, c.err)
	}
	wg.Wait()
	return mergeErr
}

// controller coordinates the abort policy between the merging goroutine
// (which observes failures) and the workers (which decide whether to
// start a trial and hold per-trial cancel functions).
type controller struct {
	mu         sync.Mutex
	failFast   bool
	failFastAt int // lowest failed index, -1 while none
	maxRatio   float64
	trials     int
	failures   int
	abortAll   bool
	cancels    []context.CancelFunc
}

// shouldSkip reports whether trial i must not start.
func (c *controller) shouldSkip(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.abortAll {
		return true
	}
	return c.failFast && c.failFastAt >= 0 && i > c.failFastAt
}

// register installs the cancel function of an in-flight trial.
func (c *controller) register(i int, cancel context.CancelFunc) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.abortAll || (c.failFast && c.failFastAt >= 0 && i > c.failFastAt) {
		// The abort raced the registration; cancel immediately so the
		// trial stops at its first context poll.
		cancel()
		return
	}
	c.cancels[i] = cancel
}

// unregister clears a completed trial's cancel function.
func (c *controller) unregister(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cancels[i] = nil
}

// noteFailure records a failed trial and cancels whatever the failure
// policy no longer needs: trials above the lowest failure (fail-fast) or
// every in-flight trial (failure-ratio doom).
func (c *controller) noteFailure(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.failures++
	if c.failFast && (c.failFastAt < 0 || i < c.failFastAt) {
		c.failFastAt = i
		for j := i + 1; j < len(c.cancels); j++ {
			if c.cancels[j] != nil {
				c.cancels[j]()
				c.cancels[j] = nil
			}
		}
	}
	// Once failures alone guarantee failed/attempted > maxRatio even if
	// every remaining trial succeeds, the sweep is doomed: stop the
	// in-flight workers instead of letting them run to completion.
	if c.maxRatio > 0 && float64(c.failures) > c.maxRatio*float64(c.trials) {
		c.abortAll = true
		for j, cancel := range c.cancels {
			if cancel != nil {
				cancel()
				c.cancels[j] = nil
			}
		}
	}
}
