package sweep

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// countingTask returns a deterministic result per trial and counts how
// many trials were actually simulated.
func countingTask(executed *[]int) Task[int] {
	return func(_ context.Context, i int) (int, error) {
		*executed = append(*executed, i)
		return 1000 + i, nil
	}
}

// TestCacheServesUnchangedTrials: the acceptance criterion "a re-run of
// an unchanged sweep with the cache enabled re-simulates zero trials",
// with the hit/miss accounting checked on both sides.
func TestCacheServesUnchangedTrials(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const trials = 10
	var executed []int
	opts := Options[int]{Workers: 2, Codec: intCodec(), Cache: cache}
	first, err := Run(context.Background(), trials, countingTask(&executed), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != trials || first.Stats.CacheMisses != trials || first.Stats.CacheHits != 0 {
		t.Fatalf("cold run: executed %d, stats %+v", len(executed), first.Stats)
	}

	executed = nil
	second, err := Run(context.Background(), trials, countingTask(&executed), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 0 {
		t.Errorf("warm run re-simulated trials %v, want none", executed)
	}
	if second.Stats.CacheHits != trials || second.Stats.Executed != 0 {
		t.Errorf("warm run stats %+v, want %d hits and 0 executed", second.Stats, trials)
	}
	for i := 0; i < trials; i++ {
		if second.Results[i] != first.Results[i] || second.Source[i] != SourceCache {
			t.Errorf("trial %d: result %d source %v", i, second.Results[i], second.Source[i])
		}
	}
}

// TestCacheKeyChangeMisses: a changed content address (spec change) must
// miss and re-execute rather than serve the stale object.
func TestCacheKeyChangeMisses(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var executed []int
	opts := Options[int]{Workers: 1, Codec: intCodec(), Cache: cache}
	if _, err := Run(context.Background(), 4, countingTask(&executed), opts); err != nil {
		t.Fatal(err)
	}

	changed := opts
	changed.Codec.Key = func(i int) string { return fmt.Sprintf("%064x", 1_000_000+i) }
	executed = nil
	out, err := Run(context.Background(), 4, countingTask(&executed), changed)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 4 || out.Stats.CacheHits != 0 {
		t.Errorf("changed keys: executed %d, stats %+v; want a full re-run", len(executed), out.Stats)
	}
}

// TestCacheCorruptObjectIsAMiss: an object that no longer decodes must be
// treated as a miss (and get overwritten), not fail the sweep.
func TestCacheCorruptObjectIsAMiss(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var executed []int
	opts := Options[int]{Workers: 1, Codec: intCodec(), Cache: cache}
	if _, err := Run(context.Background(), 3, countingTask(&executed), opts); err != nil {
		t.Fatal(err)
	}
	k := testKey(1)
	obj := filepath.Join(dir, "objects", k[:2], k)
	if err := os.WriteFile(obj, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}

	executed = nil
	out, err := Run(context.Background(), 3, countingTask(&executed), opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(executed) != 1 || executed[0] != 1 {
		t.Fatalf("executed %v, want exactly the corrupted trial 1", executed)
	}
	if out.Stats.CacheHits != 2 || out.Stats.CacheMisses != 1 {
		t.Errorf("stats %+v, want 2 hits / 1 miss", out.Stats)
	}
	// The re-executed result must have repaired the object.
	executed = nil
	if _, err := Run(context.Background(), 3, countingTask(&executed), opts); err != nil {
		t.Fatal(err)
	}
	if len(executed) != 0 {
		t.Errorf("corrupt object was not overwritten; re-executed %v", executed)
	}
}

// TestCacheRejectsMalformedKeys guards the on-disk layout against path
// tricks and non-canonical addresses.
func TestCacheRejectsMalformedKeys(t *testing.T) {
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"", "ab", "../../escape", "UPPERCASE00"} {
		if err := cache.Put(key, []byte("x")); err == nil {
			t.Errorf("Put(%q) accepted a malformed key", key)
		}
		if _, _, err := cache.Get(key); err == nil {
			t.Errorf("Get(%q) accepted a malformed key", key)
		}
	}
}

// TestJournalResume: a journaled sweep replays its completed trials on
// resume and only executes the remainder.
func TestJournalResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// Interrupted first run: only trials 0..3 complete (fail-fast at 4).
	task := func(_ context.Context, i int) (int, error) {
		if i == 4 {
			return 0, errSynthetic
		}
		return 1000 + i, nil
	}
	opts := Options[int]{Workers: 1, FailFast: true, Codec: intCodec(), Journal: j}
	if _, err := Run(context.Background(), 8, task, opts); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume with a healthy task: 0..3 replay, 4..7 execute.
	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if j2.Len() != 4 {
		t.Fatalf("journal loaded %d entries, want 4", j2.Len())
	}
	var executed []int
	opts2 := Options[int]{Workers: 1, Codec: intCodec(), Journal: j2}
	out, err := Run(context.Background(), 8, countingTask(&executed), opts2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Resumed != 4 || out.Stats.Executed != 4 {
		t.Errorf("stats %+v, want 4 resumed / 4 executed", out.Stats)
	}
	for i := 0; i < 8; i++ {
		want := SourceJournal
		if i >= 4 {
			want = SourceExecuted
		}
		if out.Results[i] != 1000+i || out.Source[i] != want {
			t.Errorf("trial %d: result %d source %v", i, out.Results[i], out.Source[i])
		}
	}
}

// TestJournalKeyMismatchInvalidates: a journal entry whose content
// address no longer matches (the spec changed between runs) must be
// ignored, so the trial re-executes under the new spec.
func TestJournalKeyMismatchInvalidates(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var executed []int
	if _, err := Run(context.Background(), 3, countingTask(&executed),
		Options[int]{Workers: 1, Codec: intCodec(), Journal: j}); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	changed := intCodec()
	changed.Key = func(i int) string { return fmt.Sprintf("%064x", 7_000_000+i) }
	executed = nil
	out, err := Run(context.Background(), 3, countingTask(&executed),
		Options[int]{Workers: 1, Codec: changed, Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Resumed != 0 || len(executed) != 3 {
		t.Errorf("stale journal replayed: stats %+v, executed %v", out.Stats, executed)
	}
}

// TestJournalToleratesTornTail: a kill mid-write leaves a torn final
// line; the loader must keep every complete entry and drop the tail.
func TestJournalToleratesTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var executed []int
	if _, err := Run(context.Background(), 3, countingTask(&executed),
		Options[int]{Workers: 1, Codec: intCodec(), Journal: j}); err != nil {
		t.Fatal(err)
	}
	_ = j.Close()

	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"v":1,"trial":3,"key":"dead`); err != nil {
		t.Fatal(err)
	}
	_ = f.Close()

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatalf("torn tail must not poison the resume: %v", err)
	}
	defer func() { _ = j2.Close() }()
	if j2.Len() != 3 {
		t.Errorf("loaded %d entries, want the 3 complete ones", j2.Len())
	}
}

// TestResumeAfterCancelReproducesFullRun: interrupt a journaled sweep via
// context cancellation, then resume it; the final outcome must equal an
// uninterrupted run's.
func TestResumeAfterCancelReproducesFullRun(t *testing.T) {
	uninterrupted, err := Run(context.Background(), 8,
		func(_ context.Context, i int) (int, error) { return 1000 + i, nil },
		Options[int]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}

	path := filepath.Join(t.TempDir(), "sweep.jsonl")
	j, err := OpenJournal(path, false)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	interrupted := func(tctx context.Context, i int) (int, error) {
		if i == 4 {
			cancel() // simulate Ctrl-C mid-sweep
			return 0, tctx.Err()
		}
		return 1000 + i, nil
	}
	out, err := Run(ctx, 8, interrupted, Options[int]{Workers: 1, Codec: intCodec(), Journal: j})
	if err != nil {
		t.Fatal(err)
	}
	_ = j.Close()
	if out.Stats.Executed != 4 || out.Stats.Canceled != 4 {
		t.Fatalf("interrupted stats %+v, want 4 executed / 4 canceled", out.Stats)
	}

	j2, err := OpenJournal(path, true)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	var executed []int
	resumed, err := Run(context.Background(), 8, countingTask(&executed),
		Options[int]{Workers: 1, Codec: intCodec(), Journal: j2})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.Resumed != 4 || resumed.Stats.Executed != 4 {
		t.Errorf("resume stats %+v, want 4 resumed / 4 executed", resumed.Stats)
	}
	for i := 0; i < 8; i++ {
		if resumed.Results[i] != uninterrupted.Results[i] {
			t.Errorf("trial %d: resumed %d, uninterrupted %d", i, resumed.Results[i], uninterrupted.Results[i])
		}
	}
}
