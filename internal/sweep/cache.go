package sweep

import (
	"errors"
	"fmt"
	"path/filepath"

	"bgploop/internal/durable"
)

// Cache is a content-addressed result store on disk. Objects are keyed
// by a canonical hex digest of everything that determines a trial's
// outcome (scenario spec, seed, enhancements, code-relevant config — see
// experiment.Scenario.CacheKey), so a key collision means the results
// are interchangeable by construction and a config change simply misses.
//
// Layout: <dir>/objects/<key[:2]>/<key>, one encoded result per file.
// Writes go through a temp file + rename + fsync, so a killed sweep
// never leaves a torn object behind. Objects that fail to decode anyway
// (bit rot, foreign files) are quarantined — moved to
// <dir>/quarantine/<key> — instead of silently treated as misses, so
// corruption is visible in the executor's stats and the bgpd /metrics
// endpoint rather than showing up only as a mysterious hit-ratio drop.
type Cache struct {
	dir  string
	fsys durable.FS
}

// OpenCache opens (creating if needed) a cache rooted at dir on the real
// filesystem.
func OpenCache(dir string) (*Cache, error) {
	return OpenCacheFS(dir, nil)
}

// OpenCacheFS is OpenCache with an explicit filesystem; fault-injection
// tests pass a durable.FaultFS so ENOSPC/EIO schedules exercise the
// production write path.
func OpenCacheFS(dir string, fsys durable.FS) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	f := durable.OrOS(fsys)
	if err := f.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir, fsys: f}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// JournalDir returns the directory where auto-derived resume journals
// live, creating it if needed.
func (c *Cache) JournalDir() (string, error) {
	dir := filepath.Join(c.dir, "journals")
	if err := c.fsys.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sweep: journal dir: %w", err)
	}
	return dir, nil
}

// path maps a key to its object file.
func (c *Cache) path(key string) (string, error) {
	if len(key) < 3 || !isHex(key) {
		return "", fmt.Errorf("sweep: malformed cache key %q", key)
	}
	return filepath.Join(c.dir, "objects", key[:2], key), nil
}

// Get returns the object stored under key, with ok=false on a miss.
func (c *Cache) Get(key string) (data []byte, ok bool, err error) {
	p, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err = c.fsys.ReadFile(p)
	if durable.IsNotExist(err) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Put stores data under key, atomically replacing any existing object.
// The object is fsynced before the rename, so an acknowledged write
// survives a crash.
func (c *Cache) Put(key string, data []byte) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	return durable.WriteFileAtomic(c.fsys, p, data, true)
}

// Quarantine moves the corrupt object stored under key to
// <dir>/quarantine/<key>, preserving the evidence for forensics instead
// of leaving a poisoned object to be re-read (or silently overwriting
// it). Quarantining an object that has already vanished is not an
// error.
func (c *Cache) Quarantine(key string) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	qdir := filepath.Join(c.dir, "quarantine")
	if err := c.fsys.MkdirAll(qdir, 0o755); err != nil {
		return fmt.Errorf("sweep: quarantine %s: %w", key, err)
	}
	if err := c.fsys.Rename(p, filepath.Join(qdir, key)); err != nil && !durable.IsNotExist(err) {
		return fmt.Errorf("sweep: quarantine %s: %w", key, err)
	}
	return nil
}

// isHex reports whether s is lowercase hexadecimal.
func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
