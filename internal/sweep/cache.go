package sweep

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Cache is a content-addressed result store on disk. Objects are keyed
// by a canonical hex digest of everything that determines a trial's
// outcome (scenario spec, seed, enhancements, code-relevant config — see
// experiment.Scenario.CacheKey), so a key collision means the results
// are interchangeable by construction and a config change simply misses.
//
// Layout: <dir>/objects/<key[:2]>/<key>, one encoded result per file.
// Writes go through a temp file + rename, so a killed sweep never leaves
// a torn object behind.
type Cache struct {
	dir string
}

// OpenCache opens (creating if needed) a cache rooted at dir.
func OpenCache(dir string) (*Cache, error) {
	if dir == "" {
		return nil, errors.New("sweep: empty cache directory")
	}
	if err := os.MkdirAll(filepath.Join(dir, "objects"), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// JournalDir returns the directory where auto-derived resume journals
// live, creating it if needed.
func (c *Cache) JournalDir() (string, error) {
	dir := filepath.Join(c.dir, "journals")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", fmt.Errorf("sweep: journal dir: %w", err)
	}
	return dir, nil
}

// path maps a key to its object file.
func (c *Cache) path(key string) (string, error) {
	if len(key) < 3 || !isHex(key) {
		return "", fmt.Errorf("sweep: malformed cache key %q", key)
	}
	return filepath.Join(c.dir, "objects", key[:2], key), nil
}

// Get returns the object stored under key, with ok=false on a miss.
func (c *Cache) Get(key string) (data []byte, ok bool, err error) {
	p, err := c.path(key)
	if err != nil {
		return nil, false, err
	}
	data, err = os.ReadFile(p)
	if errors.Is(err, os.ErrNotExist) {
		return nil, false, nil
	}
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// Put stores data under key, atomically replacing any existing object.
func (c *Cache) Put(key string, data []byte) error {
	p, err := c.path(key)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(p), "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		_ = tmp.Close()
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), p); err != nil {
		_ = os.Remove(tmp.Name())
		return err
	}
	return nil
}

// isHex reports whether s is lowercase hexadecimal.
func isHex(s string) bool {
	for _, r := range s {
		if (r < '0' || r > '9') && (r < 'a' || r > 'f') {
			return false
		}
	}
	return true
}
