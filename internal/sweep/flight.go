package sweep

import (
	"context"
	"sync"
)

// Flight collapses concurrent executions of the same content address onto
// one run. It is the in-memory counterpart of the Cache: the cache dedupes
// across *time* (a trial executed yesterday is served from disk), the
// Flight dedupes across *space* (two sweeps executing the same trial right
// now share one execution). The service layer (internal/serve) hands one
// process-wide Flight to every job, so overlapping submissions — the same
// spec at different trial counts, or N identical POSTs racing past the
// job-level dedupe — never simulate a content address twice concurrently.
//
// Sharing is sound for the same reason cache hits are: equal content
// addresses mean byte-identical results by construction, and the Codec
// contract guarantees Decode(Encode(v)) re-encodes identically, so a
// follower's decoded copy digests exactly like the leader's original.
type Flight struct {
	mu    sync.Mutex
	calls map[string]*flightCall
	stats FlightStats
}

// FlightStats counts what the singleflight did over its lifetime. The
// counters were always tracked per-sweep (Stats.Deduped) but the
// registry-wide totals are what the bgpd /metrics endpoint exposes:
// Leads is how many executions were led through the Flight, Shared how
// many concurrent callers were served a leader's bytes instead of
// executing themselves.
type FlightStats struct {
	Leads  int64
	Shared int64
}

// flightCall is one in-flight execution; done closes when the leader
// finishes and data/err are then immutable.
type flightCall struct {
	done chan struct{}
	data []byte
	err  error
}

// NewFlight returns an empty in-flight registry, safe for concurrent use.
func NewFlight() *Flight {
	return &Flight{calls: map[string]*flightCall{}}
}

// Stats snapshots the registry-wide dedupe counters.
func (f *Flight) Stats() FlightStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// Do executes fn for key exactly once across concurrent callers. The
// first caller for a key (the leader) runs fn and returns its outcome
// with shared=false; callers arriving while the leader is in flight wait
// and receive the leader's encoded bytes with shared=true. Keys are
// forgotten as soon as the leader finishes — later calls for the same key
// run fn again (the disk cache, not the Flight, dedupes across time).
//
// A leader error is never shared: waiting followers retry, and the first
// retrier becomes the new leader. This keeps error semantics per-caller —
// the leader's cancellation or deadline must not poison an unrelated
// sweep that happens to want the same trial. A follower whose own ctx is
// canceled while waiting returns ctx's error.
func (f *Flight) Do(ctx context.Context, key string, fn func() ([]byte, error)) (data []byte, shared bool, err error) {
	for {
		f.mu.Lock()
		if c, ok := f.calls[key]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return nil, false, ctx.Err()
			}
			if c.err == nil {
				f.mu.Lock()
				f.stats.Shared++
				f.mu.Unlock()
				return c.data, true, nil
			}
			if err := ctx.Err(); err != nil {
				return nil, false, err
			}
			continue // leader failed; race to become the new leader
		}
		c := &flightCall{done: make(chan struct{})}
		f.calls[key] = c
		f.stats.Leads++
		f.mu.Unlock()

		c.data, c.err = fn()
		f.mu.Lock()
		delete(f.calls, key)
		f.mu.Unlock()
		close(c.done)
		return c.data, false, c.err
	}
}
