package sweep

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"bgploop/internal/durable"
)

// journalVersion is bumped when the entry schema changes; entries with a
// different version are ignored on load.
const journalVersion = 1

// journalEntry is one completed trial, one JSON object per line.
type journalEntry struct {
	V     int `json:"v"`
	Trial int `json:"trial"`
	// Key is the trial's content address at the time it completed; an
	// entry is replayed only when the address still matches, so a changed
	// scenario spec invalidates the checkpoint per trial.
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// JournalOptions tunes a journal's durability behaviour.
type JournalOptions struct {
	// FS routes the journal's file operations; nil means the real
	// filesystem. Fault-injection tests pass a durable.FaultFS so
	// ENOSPC/EIO/torn-write schedules exercise the production code path.
	FS durable.FS
	// SyncEvery is the fsync cadence on Append: 0 (the default) never
	// fsyncs during the run — appends are flushed to the OS, which
	// survives a process kill but not a machine crash; 1 fsyncs every
	// append; N fsyncs every N appends. Close always fsyncs, whatever
	// the cadence, so a completed sweep's checkpoint is durable.
	SyncEvery int
}

// Journal is an append-only checkpoint of completed sweep trials. Every
// finished trial is written as one JSON line and flushed, so a sweep
// killed mid-flight loses at most the line being written — the loader
// tolerates a torn final line — and a restarted sweep resumes from the
// completed set instead of re-simulating it.
type Journal struct {
	path      string
	fsys      durable.FS
	f         durable.File
	w         *bufio.Writer
	entries   map[int]journalEntry
	syncEvery int
	sinceSync int
}

// OpenJournal opens the checkpoint file at path with default options
// (real filesystem, no fsync until Close). With resume=true any
// existing entries are loaded for replay; otherwise the file is
// truncated and the sweep checkpoints from scratch.
func OpenJournal(path string, resume bool) (*Journal, error) {
	return OpenJournalOpts(path, resume, JournalOptions{})
}

// OpenJournalOpts is OpenJournal with an explicit filesystem and sync
// policy.
func OpenJournalOpts(path string, resume bool, o JournalOptions) (*Journal, error) {
	if path == "" {
		return nil, errors.New("sweep: empty journal path")
	}
	fsys := durable.OrOS(o.FS)
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j := &Journal{path: path, fsys: fsys, entries: map[int]journalEntry{}, syncEvery: o.SyncEvery}
	if resume {
		if err := j.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := fsys.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load reads existing entries, ignoring unparseable lines (a torn write
// from a killed sweep must not poison the resume).
func (j *Journal) load() error {
	data, err := j.fsys.ReadFile(j.path)
	if durable.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweep: load journal: %w", err)
	}
	for _, line := range bytes.Split(data, []byte{'\n'}) {
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn or foreign line
		}
		if e.V != journalVersion || e.Key == "" || e.Data == nil {
			continue
		}
		j.entries[e.Trial] = e
	}
	return nil
}

// Len returns the number of loaded (resumable) entries.
func (j *Journal) Len() int { return len(j.entries) }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Lookup returns the journaled result of trial i if one was loaded and
// its content address still matches key.
func (j *Journal) Lookup(trial int, key string) ([]byte, bool) {
	e, ok := j.entries[trial]
	if !ok || e.Key != key {
		return nil, false
	}
	return e.Data, true
}

// Append checkpoints one completed trial and flushes it to the OS, so a
// subsequent kill cannot lose it; under a positive sync policy it is
// additionally fsynced every SyncEvery appends, so a machine crash
// cannot either. Append must only be called from one goroutine (the
// executor's merging loop).
func (j *Journal) Append(trial int, key string, data []byte) error {
	if _, ok := j.entries[trial]; ok {
		return nil // already checkpointed (e.g. replayed entry)
	}
	e := journalEntry{V: journalVersion, Trial: trial, Key: key, Data: json.RawMessage(data)}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	if j.syncEvery > 0 {
		j.sinceSync++
		if j.sinceSync >= j.syncEvery {
			if err := j.f.Sync(); err != nil {
				return fmt.Errorf("sweep: journal sync: %w", err)
			}
			j.sinceSync = 0
		}
	}
	j.entries[trial] = e
	return nil
}

// Close flushes, fsyncs, and closes the journal file. The fsync is
// unconditional — whatever the append cadence, a journal that closed
// cleanly is durable.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	var serr error
	if ferr == nil {
		serr = j.f.Sync()
	}
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	if serr != nil {
		return serr
	}
	return cerr
}
