package sweep

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// journalVersion is bumped when the entry schema changes; entries with a
// different version are ignored on load.
const journalVersion = 1

// journalEntry is one completed trial, one JSON object per line.
type journalEntry struct {
	V     int `json:"v"`
	Trial int `json:"trial"`
	// Key is the trial's content address at the time it completed; an
	// entry is replayed only when the address still matches, so a changed
	// scenario spec invalidates the checkpoint per trial.
	Key  string          `json:"key"`
	Data json.RawMessage `json:"data"`
}

// Journal is an append-only checkpoint of completed sweep trials. Every
// finished trial is written as one JSON line and flushed, so a sweep
// killed mid-flight loses at most the line being written — the loader
// tolerates a torn final line — and a restarted sweep resumes from the
// completed set instead of re-simulating it.
type Journal struct {
	path    string
	f       *os.File
	w       *bufio.Writer
	entries map[int]journalEntry
}

// OpenJournal opens the checkpoint file at path. With resume=true any
// existing entries are loaded for replay; otherwise the file is
// truncated and the sweep checkpoints from scratch.
func OpenJournal(path string, resume bool) (*Journal, error) {
	if path == "" {
		return nil, errors.New("sweep: empty journal path")
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j := &Journal{path: path, entries: map[int]journalEntry{}}
	if resume {
		if err := j.load(); err != nil {
			return nil, err
		}
	}
	flags := os.O_CREATE | os.O_WRONLY | os.O_APPEND
	if !resume {
		flags |= os.O_TRUNC
	}
	f, err := os.OpenFile(path, flags, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: open journal: %w", err)
	}
	j.f = f
	j.w = bufio.NewWriter(f)
	return j, nil
}

// load reads existing entries, ignoring unparseable lines (a torn write
// from a killed sweep must not poison the resume).
func (j *Journal) load() error {
	f, err := os.Open(j.path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("sweep: load journal: %w", err)
	}
	defer func() { _ = f.Close() }()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 64<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e journalEntry
		if err := json.Unmarshal(line, &e); err != nil {
			continue // torn or foreign line
		}
		if e.V != journalVersion || e.Key == "" || e.Data == nil {
			continue
		}
		j.entries[e.Trial] = e
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return fmt.Errorf("sweep: load journal: %w", err)
	}
	return nil
}

// Len returns the number of loaded (resumable) entries.
func (j *Journal) Len() int { return len(j.entries) }

// Path returns the journal file path.
func (j *Journal) Path() string { return j.path }

// Lookup returns the journaled result of trial i if one was loaded and
// its content address still matches key.
func (j *Journal) Lookup(trial int, key string) ([]byte, bool) {
	e, ok := j.entries[trial]
	if !ok || e.Key != key {
		return nil, false
	}
	return e.Data, true
}

// Append checkpoints one completed trial and flushes it to the OS, so a
// subsequent kill cannot lose it. Append must only be called from one
// goroutine (the executor's merging loop).
func (j *Journal) Append(trial int, key string, data []byte) error {
	if _, ok := j.entries[trial]; ok {
		return nil // already checkpointed (e.g. replayed entry)
	}
	e := journalEntry{V: journalVersion, Trial: trial, Key: key, Data: json.RawMessage(data)}
	line, err := json.Marshal(e)
	if err != nil {
		return err
	}
	if _, err := j.w.Write(append(line, '\n')); err != nil {
		return err
	}
	if err := j.w.Flush(); err != nil {
		return err
	}
	j.entries[trial] = e
	return nil
}

// Close flushes and closes the journal file.
func (j *Journal) Close() error {
	if j.f == nil {
		return nil
	}
	ferr := j.w.Flush()
	cerr := j.f.Close()
	j.f = nil
	if ferr != nil {
		return ferr
	}
	return cerr
}
