package sweep

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"testing"
)

// testKey gives trial i a well-formed content address.
func testKey(i int) string { return fmt.Sprintf("%064x", i+1) }

// intCodec round-trips int results through JSON.
func intCodec() Codec[int] {
	return Codec[int]{
		Key:    testKey,
		Encode: func(v int) ([]byte, error) { return json.Marshal(v) },
		Decode: func(b []byte) (int, error) {
			var v int
			err := json.Unmarshal(b, &v)
			return v, err
		},
	}
}

var errSynthetic = errors.New("synthetic trial failure")

// TestParallelMatchesInline is the core guarantee: for every worker
// width, the merged outcome is identical to the Workers == 1 oracle —
// same results, same statuses, same first failure — because everything
// is keyed by trial index, never by completion order.
func TestParallelMatchesInline(t *testing.T) {
	task := func(_ context.Context, i int) (int, error) {
		if i%7 == 3 {
			return 0, fmt.Errorf("trial %d: %w", i, errSynthetic)
		}
		return i * i, nil
	}
	const trials = 50
	oracle, err := Run(context.Background(), trials, task, Options[int]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 16, 0} {
		got, err := Run(context.Background(), trials, task, Options[int]{Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := 0; i < trials; i++ {
			if got.Status[i] != oracle.Status[i] {
				t.Fatalf("workers=%d trial %d: status %v, oracle %v", workers, i, got.Status[i], oracle.Status[i])
			}
			if got.Results[i] != oracle.Results[i] {
				t.Errorf("workers=%d trial %d: result %d, oracle %d", workers, i, got.Results[i], oracle.Results[i])
			}
			if (got.Errs[i] == nil) != (oracle.Errs[i] == nil) {
				t.Errorf("workers=%d trial %d: err %v, oracle %v", workers, i, got.Errs[i], oracle.Errs[i])
			}
		}
		if got.FirstFailure() != oracle.FirstFailure() {
			t.Errorf("workers=%d: first failure %d, oracle %d", workers, got.FirstFailure(), oracle.FirstFailure())
		}
		if got.Stats.Failed != oracle.Stats.Failed || got.Stats.Executed != oracle.Stats.Executed {
			t.Errorf("workers=%d: stats %+v, oracle %+v", workers, got.Stats, oracle.Stats)
		}
	}
}

// TestFailFastIndexSemantics pins the fail-fast policy to trial indices:
// whatever the completion order, the lowest failed index is reported and
// everything below it has a usable result.
func TestFailFastIndexSemantics(t *testing.T) {
	const failAt = 11
	task := func(_ context.Context, i int) (int, error) {
		if i >= failAt {
			return 0, fmt.Errorf("trial %d: %w", i, errSynthetic)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4} {
		out, err := Run(context.Background(), 40, task, Options[int]{Workers: workers, FailFast: true})
		if err != nil {
			t.Fatal(err)
		}
		if ff := out.FirstFailure(); ff != failAt {
			t.Errorf("workers=%d: first failure %d, want %d", workers, ff, failAt)
		}
		for i := 0; i < failAt; i++ {
			if !out.Done(i) || out.Results[i] != i {
				t.Fatalf("workers=%d trial %d below the failure: status %v result %d", workers, i, out.Status[i], out.Results[i])
			}
		}
		for i := failAt + 1; i < 40; i++ {
			switch out.Status[i] {
			case StatusSkipped, StatusCanceled, StatusFailed:
				// Above the first failure anything non-Done is acceptable;
				// the caller discards these slots.
			case StatusDone:
				if workers == 1 {
					t.Errorf("inline trial %d above the failure ran to completion", i)
				}
			}
		}
	}
}

// TestFailFastCancelsInFlight proves the satellite fix: a fail-fast
// failure cancels trials already running above it instead of letting them
// run to completion. Trials 1..3 block on their context; trial 0 fails
// only after all three are in flight.
func TestFailFastCancelsInFlight(t *testing.T) {
	started := make(chan struct{}, 3)
	task := func(ctx context.Context, i int) (int, error) {
		if i == 0 {
			for n := 0; n < 3; n++ {
				<-started
			}
			return 0, errSynthetic
		}
		started <- struct{}{}
		<-ctx.Done()
		return 0, fmt.Errorf("trial %d interrupted: %w", i, ctx.Err())
	}
	out, err := Run(context.Background(), 4, task, Options[int]{Workers: 4, FailFast: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Status[0] != StatusFailed {
		t.Errorf("trial 0 status %v, want failed", out.Status[0])
	}
	for i := 1; i < 4; i++ {
		if out.Status[i] != StatusCanceled {
			t.Errorf("trial %d status %v, want canceled", i, out.Status[i])
		}
	}
	if out.Stats.Canceled != 3 || out.Stats.Failed != 1 {
		t.Errorf("stats %+v, want 3 canceled / 1 failed", out.Stats)
	}
}

// TestFailureRatioDoomAbortsSweep proves the early abort: once the
// failure count alone guarantees the ratio will be breached, in-flight
// trials are canceled and unstarted ones are skipped.
func TestFailureRatioDoomAbortsSweep(t *testing.T) {
	// Ratio 0.25 over 4 trials dooms the sweep at the 2nd failure
	// (failures > 1). Trials 2 and 3 block until canceled; trials 0 and 1
	// fail once both blockers are in flight.
	var wait sync.WaitGroup
	wait.Add(2)
	task := func(ctx context.Context, i int) (int, error) {
		if i < 2 {
			wait.Wait()
			return 0, errSynthetic
		}
		wait.Done()
		<-ctx.Done()
		return 0, fmt.Errorf("trial %d interrupted: %w", i, ctx.Err())
	}
	out, err := Run(context.Background(), 4, task, Options[int]{Workers: 4, MaxFailureRatio: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Failed != 2 {
		t.Errorf("failed = %d, want 2", out.Stats.Failed)
	}
	if out.Stats.Canceled != 2 {
		t.Errorf("canceled = %d, want 2 (the blocked in-flight trials)", out.Stats.Canceled)
	}
}

// TestParentCancellationStopsSweep: canceling the caller's context marks
// unfinished trials canceled (never failed) and the sweep still returns a
// complete per-trial accounting.
func TestParentCancellationStopsSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	task := func(tctx context.Context, i int) (int, error) {
		if i < 2 {
			return i, nil
		}
		if i == 2 {
			cancel()
			return 0, tctx.Err()
		}
		<-tctx.Done()
		return 0, tctx.Err()
	}
	out, err := Run(ctx, 6, task, Options[int]{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Executed != 2 {
		t.Errorf("executed = %d, want 2", out.Stats.Executed)
	}
	if out.Stats.Canceled != 4 {
		t.Errorf("canceled = %d, want 4 (trial 2 plus the never-started tail)", out.Stats.Canceled)
	}
	if out.Stats.Failed != 0 {
		t.Errorf("failed = %d; cancellation must not count as failure", out.Stats.Failed)
	}
}

// TestRunArgumentValidation covers the harness-error paths.
func TestRunArgumentValidation(t *testing.T) {
	ok := func(_ context.Context, i int) (int, error) { return i, nil }
	if _, err := Run(context.Background(), 0, ok, Options[int]{}); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run[int](context.Background(), 3, nil, Options[int]{}); err == nil {
		t.Error("nil task accepted")
	}
	cache, err := OpenCache(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), 3, ok, Options[int]{Cache: cache}); err == nil {
		t.Error("cache without codec accepted")
	}
}
