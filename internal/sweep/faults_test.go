package sweep

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"syscall"
	"testing"

	"bgploop/internal/durable"
)

// TestCacheWriteSurfacesFaults: ENOSPC and EIO during the cache's
// temp-write-rename sequence come back as structured errors from
// sweep.Run, and no torn object is left under the key (table-driven
// over FaultFS schedules — the satellite coverage for cache writes).
func TestCacheWriteSurfacesFaults(t *testing.T) {
	cases := []struct {
		name  string
		fault durable.Fault
		errno error
	}{
		{"enospc-on-write", durable.Fault{Op: durable.OpWrite, Kind: durable.FaultENOSPC}, syscall.ENOSPC},
		{"eio-on-write", durable.Fault{Op: durable.OpWrite, Kind: durable.FaultEIO}, syscall.EIO},
		{"eio-on-sync", durable.Fault{Op: durable.OpSync, Kind: durable.FaultEIO}, syscall.EIO},
		{"enospc-on-rename", durable.Fault{Op: durable.OpRename, Kind: durable.FaultENOSPC}, syscall.ENOSPC},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fsys := durable.NewFaultFS(nil, []durable.Fault{tc.fault})
			cache, err := OpenCacheFS(dir, fsys)
			if err != nil {
				t.Fatal(err)
			}
			var executed []int
			_, err = Run(context.Background(), 1, countingTask(&executed), Options[int]{
				Workers: 1,
				Codec:   intCodec(),
				Cache:   cache,
			})
			if !errors.Is(err, tc.errno) {
				t.Fatalf("run error = %v, want %v", err, tc.errno)
			}
			var fe *durable.FaultError
			if !errors.As(err, &fe) {
				t.Fatalf("error is not a structured FaultError: %v", err)
			}
			// The failed write must not have installed a (torn) object.
			if _, err := os.Stat(filepath.Join(dir, "objects", testKey(0)[:2], testKey(0))); !errors.Is(err, os.ErrNotExist) {
				t.Error("a failed cache write left an object behind")
			}
		})
	}
}

// TestJournalAppendSurfacesFaults: ENOSPC and EIO on the journal append
// path (write with sync=never, fsync with sync=always) surface as
// structured errors from sweep.Run (table-driven over FaultFS schedules
// — the satellite coverage for journal appends).
func TestJournalAppendSurfacesFaults(t *testing.T) {
	cases := []struct {
		name      string
		fault     durable.Fault
		syncEvery int
		errno     error
	}{
		{"enospc-on-write", durable.Fault{Op: durable.OpWrite, Kind: durable.FaultENOSPC}, 0, syscall.ENOSPC},
		{"eio-on-write", durable.Fault{Op: durable.OpWrite, Kind: durable.FaultEIO}, 0, syscall.EIO},
		{"eio-on-sync", durable.Fault{Op: durable.OpSync, Kind: durable.FaultEIO}, 1, syscall.EIO},
		{"torn-write", durable.Fault{Op: durable.OpWrite, Kind: durable.FaultTorn, TornAt: 4}, 0, syscall.EIO},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			fsys := durable.NewFaultFS(nil, []durable.Fault{tc.fault})
			j, err := OpenJournalOpts(path, false, JournalOptions{FS: fsys, SyncEvery: tc.syncEvery})
			if err != nil {
				t.Fatal(err)
			}
			var executed []int
			_, err = Run(context.Background(), 1, countingTask(&executed), Options[int]{
				Workers: 1,
				Codec:   intCodec(),
				Journal: j,
			})
			if !errors.Is(err, tc.errno) {
				t.Fatalf("run error = %v, want %v", err, tc.errno)
			}
			if !strings.Contains(err.Error(), "journal") {
				t.Errorf("error does not name the journal: %v", err)
			}
		})
	}
}

// TestJournalSyncPolicy pins the fsync cadence: with SyncEvery=N over
// 6 appends the file fsyncs twice during the run, and Close always adds
// the final fsync regardless of policy.
func TestJournalSyncPolicy(t *testing.T) {
	cases := []struct {
		name       string
		syncEvery  int
		appends    int
		wantSyncs  int // before Close
		closeSyncs int // Close's unconditional fsync
	}{
		{"never", 0, 6, 0, 1},
		{"always", 1, 6, 6, 1},
		{"every-3", 3, 6, 2, 1},
		{"every-4-partial", 4, 6, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "journal.jsonl")
			fsys := durable.NewFaultFS(nil, nil) // no faults; just the op counters
			j, err := OpenJournalOpts(path, false, JournalOptions{FS: fsys, SyncEvery: tc.syncEvery})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < tc.appends; i++ {
				if err := j.Append(i, testKey(i), []byte("1")); err != nil {
					t.Fatal(err)
				}
			}
			if got := fsys.Ops()[durable.OpSync]; got != tc.wantSyncs {
				t.Fatalf("after %d appends: %d fsyncs, want %d", tc.appends, got, tc.wantSyncs)
			}
			if err := j.Close(); err != nil {
				t.Fatal(err)
			}
			if got := fsys.Ops()[durable.OpSync]; got != tc.wantSyncs+tc.closeSyncs {
				t.Fatalf("after Close: %d fsyncs, want %d", got, tc.wantSyncs+tc.closeSyncs)
			}
		})
	}
}

// TestJournalTornTailRecoveryWithSyncNever pins the satellite
// requirement: even with sync=never (flush-only appends), a journal cut
// mid-line resumes from every whole entry and re-executes only the torn
// one.
func TestJournalTornTailRecoveryWithSyncNever(t *testing.T) {
	path := filepath.Join(t.TempDir(), "journal.jsonl")
	j, err := OpenJournalOpts(path, false, JournalOptions{SyncEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	var executed []int
	if _, err := Run(context.Background(), 3, countingTask(&executed), Options[int]{
		Workers: 1,
		Codec:   intCodec(),
		Journal: j,
	}); err != nil {
		t.Fatal(err)
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the final line in half, as a kill mid-append would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(data), "\n"), "\n")
	last := lines[len(lines)-1]
	torn := strings.Join(lines[:len(lines)-1], "") + last[:len(last)/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	j2, err := OpenJournalOpts(path, true, JournalOptions{SyncEvery: 0})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = j2.Close() }()
	if j2.Len() != 2 {
		t.Fatalf("resumed journal has %d entries, want the 2 whole ones", j2.Len())
	}
	executed = nil
	out, err := Run(context.Background(), 3, countingTask(&executed), Options[int]{
		Workers: 1,
		Codec:   intCodec(),
		Journal: j2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Resumed != 2 || out.Stats.Executed != 1 || len(executed) != 1 {
		t.Fatalf("resume stats = %+v (executed %d), want 2 resumed / 1 executed", out.Stats, executed)
	}
}

// TestCacheQuarantinesCorruptObject: a cache object that fails to decode
// is moved to quarantine/ (evidence preserved), counted in
// Stats.Quarantined, and the trial re-executes and overwrites it with a
// fresh object.
func TestCacheQuarantinesCorruptObject(t *testing.T) {
	dir := t.TempDir()
	cache, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	var executed []int
	if _, err := Run(context.Background(), 2, countingTask(&executed), Options[int]{
		Workers: 1,
		Codec:   intCodec(),
		Cache:   cache,
	}); err != nil {
		t.Fatal(err)
	}

	// Rot trial 0's object.
	key := testKey(0)
	objPath := filepath.Join(dir, "objects", key[:2], key)
	if err := os.WriteFile(objPath, []byte("not-a-result"), 0o644); err != nil {
		t.Fatal(err)
	}

	executed = nil
	out, err := Run(context.Background(), 2, countingTask(&executed), Options[int]{
		Workers: 1,
		Codec:   intCodec(),
		Cache:   cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Quarantined != 1 || out.Stats.CacheHits != 1 || out.Stats.Executed != 1 {
		t.Fatalf("stats = %+v, want 1 quarantined / 1 hit / 1 executed", out.Stats)
	}
	// The evidence moved to quarantine/ ...
	qdata, err := os.ReadFile(filepath.Join(dir, "quarantine", key))
	if err != nil {
		t.Fatalf("quarantined object missing: %v", err)
	}
	if string(qdata) != "not-a-result" {
		t.Fatalf("quarantined bytes = %q, want the corrupt original", qdata)
	}
	// ... and a fresh object took its place.
	if data, err := os.ReadFile(objPath); err != nil || string(data) == "not-a-result" {
		t.Fatalf("object not rewritten: %q, %v", data, err)
	}
	// A third run is clean: all hits, nothing quarantined.
	out, err = Run(context.Background(), 2, countingTask(&executed), Options[int]{
		Workers: 1,
		Codec:   intCodec(),
		Cache:   cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Quarantined != 0 || out.Stats.CacheHits != 2 {
		t.Fatalf("post-heal stats = %+v, want 0 quarantined / 2 hits", out.Stats)
	}
}

// TestCacheCrashDuringPutLeavesNoTornObject: a scripted crash between
// the temp write and the rename must not leave a readable object — the
// next run misses and re-executes.
func TestCacheCrashDuringPutLeavesNoTornObject(t *testing.T) {
	dir := t.TempDir()
	fsys := durable.NewFaultFS(nil, []durable.Fault{{Op: durable.OpRename, Kind: durable.FaultCrash}})
	cache, err := OpenCacheFS(dir, fsys)
	if err != nil {
		t.Fatal(err)
	}
	var ce *durable.CrashError
	func() {
		defer func() { ce = durable.RecoverCrash(recover()) }()
		var executed []int
		_, _ = Run(context.Background(), 1, countingTask(&executed), Options[int]{
			Workers: 1,
			Codec:   intCodec(),
			Cache:   cache,
		})
	}()
	if ce == nil || ce.Op != durable.OpRename {
		t.Fatalf("crash = %+v, want an OpRename crash", ce)
	}

	// The "restarted process" opens the same directory on a clean FS.
	cache2, err := OpenCache(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok, err := cache2.Get(testKey(0)); err != nil || ok {
		t.Fatalf("torn put visible after crash: ok=%v err=%v", ok, err)
	}
	var executed []int
	out, err := Run(context.Background(), 1, countingTask(&executed), Options[int]{
		Workers: 1,
		Codec:   intCodec(),
		Cache:   cache2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.Executed != 1 || out.Stats.Quarantined != 0 {
		t.Fatalf("post-crash stats = %+v, want a clean re-execute", out.Stats)
	}
}
