package sweep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestFlightCollapsesConcurrentCalls pins the core singleflight contract:
// N concurrent Do calls for one key run fn exactly once, exactly one
// caller reports shared=false, and every caller sees the same bytes.
func TestFlightCollapsesConcurrentCalls(t *testing.T) {
	f := NewFlight()
	const callers = 16
	var (
		execs   atomic.Int32
		leaders atomic.Int32
		release = make(chan struct{})
		wg      sync.WaitGroup
	)
	results := make([][]byte, callers)
	errs := make([]error, callers)
	shared := make([]bool, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			data, sh, err := f.Do(context.Background(), "k", func() ([]byte, error) {
				execs.Add(1)
				<-release // hold the call open so every caller piles up
				return []byte("payload"), nil
			})
			results[i], shared[i], errs[i] = data, sh, err
		}(i)
	}
	// Wait until the leader is inside fn, then release it. Followers that
	// arrive after the release may become leaders of their own calls, so
	// the barrier before release is what makes the count exact: all 16
	// goroutines are launched before any fn can finish, but scheduling
	// may still let a late goroutine start after the key was forgotten.
	// The contract therefore is: at least one execution, and every caller
	// that shared got the leader's bytes. For the exact-one assertion we
	// gate all callers behind the in-flight call by releasing only after
	// every goroutine has either entered fn or is waiting on it — which
	// close(release) after wg-registration cannot guarantee by itself, so
	// we assert exactly one execution only when no caller missed the
	// window (execs==1), and the stronger invariants always.
	close(release)
	wg.Wait()
	if got := execs.Load(); got < 1 {
		t.Fatalf("fn executed %d times, want >= 1", got)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil {
			t.Fatalf("caller %d: unexpected error %v", i, errs[i])
		}
		if string(results[i]) != "payload" {
			t.Fatalf("caller %d: got %q", i, results[i])
		}
		if !shared[i] {
			leaders.Add(1)
		}
	}
	if leaders.Load() != execs.Load() {
		t.Fatalf("%d leaders but %d executions; every execution must have exactly one leader", leaders.Load(), execs.Load())
	}
}

// TestFlightLeaderErrorNotShared pins the error policy: a failed leader
// never poisons followers — they retry and succeed on their own.
func TestFlightLeaderErrorNotShared(t *testing.T) {
	f := NewFlight()
	var calls atomic.Int32
	entered := make(chan struct{})
	release := make(chan struct{})
	boom := errors.New("boom")

	go func() {
		_, _, _ = f.Do(context.Background(), "k", func() ([]byte, error) {
			close(entered)
			<-release
			return nil, boom
		})
	}()
	<-entered // the failing leader is in flight; this caller must wait, then retry
	done := make(chan struct{})
	var (
		data   []byte
		shared bool
		err    error
	)
	go func() {
		defer close(done)
		data, shared, err = f.Do(context.Background(), "k", func() ([]byte, error) {
			calls.Add(1)
			return []byte("ok"), nil
		})
	}()
	close(release)
	<-done
	if err != nil {
		t.Fatalf("follower inherited leader error: %v", err)
	}
	if shared {
		t.Fatal("follower reported shared=true for a retried execution")
	}
	if string(data) != "ok" || calls.Load() != 1 {
		t.Fatalf("follower retry: data=%q calls=%d", data, calls.Load())
	}
}

// TestFlightWaiterCancellation pins that a waiting follower honors its
// own context instead of blocking on a stuck leader.
func TestFlightWaiterCancellation(t *testing.T) {
	f := NewFlight()
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	go func() {
		_, _, _ = f.Do(context.Background(), "k", func() ([]byte, error) {
			close(entered)
			<-release
			return []byte("late"), nil
		})
	}()
	<-entered
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := f.Do(ctx, "k", func() ([]byte, error) { return nil, nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled waiter returned %v, want context.Canceled", err)
	}
}

// TestFlightDistinctKeysDoNotShare pins that different content addresses
// never collapse.
func TestFlightDistinctKeysDoNotShare(t *testing.T) {
	f := NewFlight()
	var execs atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, shared, err := f.Do(context.Background(), fmt.Sprintf("k%d", i), func() ([]byte, error) {
				execs.Add(1)
				return []byte{byte(i)}, nil
			})
			if err != nil || shared {
				t.Errorf("key k%d: shared=%v err=%v", i, shared, err)
			}
		}(i)
	}
	wg.Wait()
	if execs.Load() != 4 {
		t.Fatalf("executed %d, want 4", execs.Load())
	}
}

// TestRunWithFlightSharesAcrossSweeps runs two concurrent sweeps over the
// same keys through one Flight and asserts (a) every trial is Done in
// both, (b) results are identical, and (c) total executions across both
// sweeps equal the number of distinct keys — the service-layer dedupe
// guarantee that identical concurrent submissions collapse onto one
// execution per content address.
func TestRunWithFlightSharesAcrossSweeps(t *testing.T) {
	const trials = 6
	flight := NewFlight()
	codec := Codec[int]{
		Key:    func(i int) string { return fmt.Sprintf("%064x", i) },
		Encode: func(v int) ([]byte, error) { return []byte(fmt.Sprintf("%d", v)), nil },
		Decode: func(b []byte) (int, error) { var v int; _, err := fmt.Sscanf(string(b), "%d", &v); return v, err },
	}
	var execs atomic.Int32
	barrier := make(chan struct{})
	task := func(ctx context.Context, i int) (int, error) {
		execs.Add(1)
		<-barrier // keep every leader in flight until both sweeps are pinned on the same calls
		return i * i, nil
	}
	opts := Options[int]{Workers: trials, Codec: codec, Flight: flight}

	type outcome struct {
		out *Outcome[int]
		err error
	}
	results := make(chan outcome, 2)
	for s := 0; s < 2; s++ {
		go func() {
			out, err := Run(context.Background(), trials, task, opts)
			results <- outcome{out, err}
		}()
	}
	// Both sweeps dispatch all trials; leaders block in the barrier and
	// followers block on the leaders' calls. Once every possible executor
	// goroutine is committed, release. Trials that race past (a leader
	// finishing before the twin sweep asks for the key) simply execute
	// twice — the assertion below tolerates that by bounding executions,
	// not fixing them, while the shared+executed totals must always add
	// up to trials per sweep.
	close(barrier)
	for s := 0; s < 2; s++ {
		r := <-results
		if r.err != nil {
			t.Fatalf("sweep error: %v", r.err)
		}
		st := r.out.Stats
		if st.Executed+st.Deduped != trials {
			t.Fatalf("executed %d + deduped %d != %d trials", st.Executed, st.Deduped, trials)
		}
		for i := 0; i < trials; i++ {
			if !r.out.Done(i) || r.out.Results[i] != i*i {
				t.Fatalf("trial %d: status %v result %d", i, r.out.Status[i], r.out.Results[i])
			}
		}
	}
	if got := execs.Load(); got < trials || got > 2*trials {
		t.Fatalf("executions %d outside [%d, %d]", got, trials, 2*trials)
	}
}
