package metrics

import (
	"math"
	"testing"
)

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram(0.1, 0.5, 1) // deliberately sorted; constructor also sorts
	for _, x := range []float64{0.05, 0.1, 0.3, 0.9, 2.5} {
		h.Observe(x)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-3.85) > 1e-9 {
		t.Fatalf("sum = %g, want 3.85", h.Sum())
	}
	// Cumulative: <=0.1 -> {0.05, 0.1}; <=0.5 -> +0.3; <=1 -> +0.9; +Inf -> +2.5.
	want := []uint64{2, 3, 4, 5}
	got := h.Cumulative()
	if len(got) != len(want) {
		t.Fatalf("cumulative len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("cumulative[%d] = %d, want %d (%v)", i, got[i], want[i], got)
		}
	}
}

func TestHistogramUnsortedAndDuplicateBounds(t *testing.T) {
	h := NewHistogram(1, 0.5, 1, 0.1)
	b := h.Bounds()
	want := []float64{0.1, 0.5, 1}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v, want %v", b, want)
	}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}

func TestHistogramMerge(t *testing.T) {
	a := NewHistogram(1, 10)
	b := NewHistogram(1, 10)
	a.Observe(0.5)
	b.Observe(5)
	b.Observe(50)
	a.Merge(b)
	if a.Count() != 3 {
		t.Fatalf("merged count = %d, want 3", a.Count())
	}
	got := a.Cumulative()
	want := []uint64{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merged cumulative = %v, want %v", got, want)
		}
	}
	if math.Abs(a.Sum()-55.5) > 1e-9 {
		t.Fatalf("merged sum = %g, want 55.5", a.Sum())
	}
}

func TestHistogramEmptyBounds(t *testing.T) {
	h := NewHistogram()
	h.Observe(42)
	if h.Count() != 1 || len(h.Cumulative()) != 1 || h.Cumulative()[0] != 1 {
		t.Fatalf("single +Inf bucket broken: %v", h.Cumulative())
	}
}
