// Package metrics provides the small statistical toolkit the experiment
// harness uses: sample aggregation across replicated trials and ordinary
// least-squares fits, which back the paper's "linearly proportional to the
// MRAI value" observations (Observation 1 and 2).
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// Sample summarises a set of observations of one metric.
type Sample struct {
	N    int
	Mean float64
	Std  float64 // population standard deviation
	Min  float64
	Max  float64
}

// NewSample computes a Sample over xs. An empty input yields the zero
// Sample.
func NewSample(xs []float64) Sample {
	if len(xs) == 0 {
		return Sample{}
	}
	s := Sample{N: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(s.N)
	varSum := 0.0
	for _, x := range xs {
		d := x - s.Mean
		varSum += d * d
	}
	s.Std = math.Sqrt(varSum / float64(s.N))
	return s
}

// String renders "mean ± std (n=N)".
func (s Sample) String() string {
	return fmt.Sprintf("%.3g ± %.2g (n=%d)", s.Mean, s.Std, s.N)
}

// LinearFit is an ordinary least-squares line y = Intercept + Slope*x.
type LinearFit struct {
	Slope     float64
	Intercept float64
	// R2 is the coefficient of determination; 1 means a perfect linear
	// relationship.
	R2 float64
}

// ErrDegenerateFit is returned when a fit is requested over fewer than two
// distinct x values.
var ErrDegenerateFit = errors.New("metrics: linear fit needs >= 2 distinct x values")

// FitLine computes the least-squares line through (xs[i], ys[i]).
func FitLine(xs, ys []float64) (LinearFit, error) {
	if len(xs) != len(ys) {
		return LinearFit{}, fmt.Errorf("metrics: x/y length mismatch %d != %d", len(xs), len(ys))
	}
	n := float64(len(xs))
	if len(xs) < 2 {
		return LinearFit{}, ErrDegenerateFit
	}
	var sumX, sumY float64
	for i := range xs {
		sumX += xs[i]
		sumY += ys[i]
	}
	meanX, meanY := sumX/n, sumY/n
	var sxx, sxy, syy float64
	for i := range xs {
		dx, dy := xs[i]-meanX, ys[i]-meanY
		sxx += dx * dx
		sxy += dx * dy
		syy += dy * dy
	}
	//detlint:allow floateq exact zero is the degenerate all-equal-x sentinel, not a tolerance check
	if sxx == 0 {
		return LinearFit{}, ErrDegenerateFit
	}
	fit := LinearFit{Slope: sxy / sxx}
	fit.Intercept = meanY - fit.Slope*meanX
	//detlint:allow floateq exact zero distinguishes a perfectly horizontal fit, where R2 is 1 by definition
	if syy == 0 {
		// A perfectly horizontal relationship is perfectly linear.
		fit.R2 = 1
	} else {
		fit.R2 = (sxy * sxy) / (sxx * syy)
	}
	return fit, nil
}

// Ratio returns a/b, or 0 when b is 0 — convenient for normalised metrics
// like "TTL exhaustions normalised by standard BGP" (Figures 8a, 9a).
func Ratio(a, b float64) float64 {
	//detlint:allow floateq exact zero guards the division; near-zero b must still divide
	if b == 0 {
		return 0
	}
	return a / b
}

// Means collapses per-trial observations: given k metric vectors of equal
// length, it returns the element-wise mean vector. It is the aggregation
// used when the paper repeats Internet-topology runs "a number of times
// with different destination ASes and failed links".
func Means(rows [][]float64) ([]float64, error) {
	if len(rows) == 0 {
		return nil, errors.New("metrics: no rows to average")
	}
	width := len(rows[0])
	out := make([]float64, width)
	for _, row := range rows {
		if len(row) != width {
			return nil, fmt.Errorf("metrics: ragged rows: %d != %d", len(row), width)
		}
		for i, x := range row {
			out[i] += x
		}
	}
	for i := range out {
		out[i] /= float64(len(rows))
	}
	return out, nil
}
