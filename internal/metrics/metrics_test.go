package metrics

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewSample(t *testing.T) {
	s := NewSample([]float64{2, 4, 6})
	if s.N != 3 || s.Mean != 4 || s.Min != 2 || s.Max != 6 {
		t.Errorf("sample = %+v", s)
	}
	want := math.Sqrt(8.0 / 3.0)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Errorf("Std = %v, want %v", s.Std, want)
	}
}

func TestNewSampleEmpty(t *testing.T) {
	if s := NewSample(nil); s.N != 0 || s.Mean != 0 {
		t.Errorf("empty sample = %+v", s)
	}
}

func TestFitLineExact(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{1, 2, 3, 4}
	ys := []float64{5, 7, 9, 11}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Slope-2) > 1e-12 || math.Abs(fit.Intercept-3) > 1e-12 {
		t.Errorf("fit = %+v", fit)
	}
	if math.Abs(fit.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", fit.R2)
	}
}

func TestFitLineNoise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2.1, 3.9, 6.2, 7.8, 10.1}
	fit, err := FitLine(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope < 1.8 || fit.Slope > 2.2 {
		t.Errorf("Slope = %v, want ~2", fit.Slope)
	}
	if fit.R2 < 0.99 {
		t.Errorf("R2 = %v, want near 1", fit.R2)
	}
}

func TestFitLineErrors(t *testing.T) {
	if _, err := FitLine([]float64{1}, []float64{2}); !errors.Is(err, ErrDegenerateFit) {
		t.Errorf("single point err = %v", err)
	}
	if _, err := FitLine([]float64{2, 2}, []float64{1, 5}); !errors.Is(err, ErrDegenerateFit) {
		t.Errorf("vertical err = %v", err)
	}
	if _, err := FitLine([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestFitLineHorizontal(t *testing.T) {
	fit, err := FitLine([]float64{1, 2, 3}, []float64{4, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if fit.Slope != 0 || fit.R2 != 1 {
		t.Errorf("horizontal fit = %+v", fit)
	}
}

func TestRatio(t *testing.T) {
	if Ratio(6, 3) != 2 {
		t.Error("Ratio(6,3) != 2")
	}
	if Ratio(6, 0) != 0 {
		t.Error("Ratio by zero != 0")
	}
}

func TestMeans(t *testing.T) {
	rows := [][]float64{{1, 2}, {3, 4}}
	got, err := Means(rows)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 2 || got[1] != 3 {
		t.Errorf("Means = %v", got)
	}
	if _, err := Means(nil); err == nil {
		t.Error("empty Means accepted")
	}
	if _, err := Means([][]float64{{1}, {1, 2}}); err == nil {
		t.Error("ragged Means accepted")
	}
}

func TestPropertySampleBounds(t *testing.T) {
	f := func(xs []float64) bool {
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				return true // skip pathological float inputs
			}
		}
		s := NewSample(xs)
		if len(xs) == 0 {
			return s.N == 0
		}
		return s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9 && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
