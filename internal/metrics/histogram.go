package metrics

import "sort"

// Histogram is a fixed-bucket histogram in the cumulative-exposition
// style: bucket i counts observations x <= Bounds[i], plus one implicit
// overflow bucket (+Inf). It backs the bgpd /metrics per-phase latency
// exposition. The type is a plain accumulator — not safe for concurrent
// use; callers that observe from several goroutines must serialize.
type Histogram struct {
	// bounds are the ascending upper bounds; counts has len(bounds)+1
	// slots, the last being the +Inf overflow bucket.
	bounds []float64
	counts []uint64
	sum    float64
	n      uint64
}

// NewHistogram builds a histogram over the given upper bounds. Bounds are
// sorted and deduplicated defensively, so callers can pass literals in
// any order; an empty bounds list yields a single +Inf bucket.
func NewHistogram(bounds ...float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i > 0 && b <= dedup[len(dedup)-1] {
			continue
		}
		dedup = append(dedup, b)
	}
	return &Histogram{
		bounds: dedup,
		counts: make([]uint64, len(dedup)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(x float64) {
	i := sort.SearchFloat64s(h.bounds, x) // first bound >= x: the bucket x falls in
	h.counts[i]++
	h.sum += x
	h.n++
}

// Bounds returns the ascending bucket upper bounds (without +Inf).
func (h *Histogram) Bounds() []float64 { return append([]float64(nil), h.bounds...) }

// Cumulative returns the cumulative counts per bound, exposition-style:
// Cumulative()[i] counts observations <= Bounds()[i], and the final extra
// element is the total count (the +Inf bucket).
func (h *Histogram) Cumulative() []uint64 {
	out := make([]uint64, len(h.counts))
	var acc uint64
	for i, c := range h.counts {
		acc += c
		out[i] = acc
	}
	return out
}

// Count returns the number of observations; Sum their total.
func (h *Histogram) Count() uint64 { return h.n }
func (h *Histogram) Sum() float64  { return h.sum }

// Merge adds other's observations into h. The bucket layouts must match
// (same constructor arguments); mismatched layouts merge only the shared
// prefix of buckets and the count/sum totals, which keeps the totals
// correct and degrades only bucket resolution.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		if i < len(other.counts) {
			h.counts[i] += other.counts[i]
		}
	}
	h.sum += other.sum
	h.n += other.n
}
