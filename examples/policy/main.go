// Policy studies transient loops under realistic routing *policies* — an
// extension beyond the paper, whose experiments use plain shortest-path
// routing (its introduction notes that loops can also arise under policy
// changes). It runs the same T_down failure on the same Internet-like
// topology twice: once with shortest-path routing and once with
// Gao-Rexford customer/peer/provider policies (relationship-based
// preference + valley-free export filtering), and compares convergence
// and looping.
package main

import (
	"fmt"
	"log"
	"os"

	"bgploop"
	"bgploop/internal/bgp"
	"bgploop/internal/des"
	"bgploop/internal/experiment"
	"bgploop/internal/report"
	"bgploop/internal/routing"
	"bgploop/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const (
		size   = 48
		trials = 4
	)
	g, rels, err := topology.GenerateInternetRelations(topology.InternetConfig{Nodes: size, Seed: 2})
	if err != nil {
		return err
	}
	if err := rels.Validate(g); err != nil {
		return err
	}

	shortest := bgploop.DefaultConfig()

	gaoRexford := bgploop.DefaultConfig()
	gaoRexford.PolicyFor = func(self topology.Node) routing.Policy {
		return routing.GaoRexford{Self: self, Rel: rels}
	}
	gaoRexford.Export = bgp.GaoRexfordExport{Rel: rels}

	tbl := &report.Table{
		Title: fmt.Sprintf("T_down on %s: shortest-path vs Gao-Rexford policy routing", g.Name()),
		Columns: []string{
			"policy", "convergence_s", "looping_duration_s",
			"ttl_exhaustions", "looping_ratio", "updates_sent",
		},
	}

	for _, variant := range []struct {
		name string
		cfg  bgploop.Config
	}{
		{"shortest-path", shortest},
		{"gao-rexford", gaoRexford},
	} {
		gen := func(trial int) (experiment.Scenario, error) {
			pick := des.NewRNG(int64(trial) + 10).Stream("policy/dest")
			lows := topology.LowestDegreeNodes(g)
			dest := lows[pick.Intn(len(lows))]
			return experiment.TDownScenario(g, dest, variant.cfg, int64(trial)+10), nil
		}
		agg, _, err := experiment.RunTrials(gen, trials)
		if err != nil {
			return err
		}
		tbl.AddFloats(variant.name,
			agg.ConvergenceSec.Mean,
			agg.LoopingDurationSec.Mean,
			agg.TTLExhaustions.Mean,
			agg.LoopingRatio.Mean,
			agg.UpdatesSent.Mean)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Println()
	fmt.Println("Why policy routing changes the picture: Gao-Rexford export rules keep")
	fmt.Println("peer- and provider-learned routes away from non-customers, so each node")
	fmt.Println("holds fewer alternate (and fewer obsolete) paths. Path exploration is")
	fmt.Println("shallower, which typically shortens convergence and cuts looping — at the")
	fmt.Println("price of giving up some physically-available detours.")
	return nil
}
