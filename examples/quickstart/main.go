// Quickstart reproduces the paper's Figure 1 walkthrough: the 7-node
// example topology in which failing link [4 0] makes nodes 5 and 6 point
// at each other — a transient 2-node forwarding loop — until node 5's new
// path announcement reaches node 6 and breaks it.
package main

import (
	"fmt"
	"log"
	"os"

	"bgploop"
)

func main() {
	cfg := bgploop.DefaultConfig()
	scenario := bgploop.Figure1TLong(cfg, 1)

	fmt.Println("Figure 1 scenario: 7 ASes, destination behind AS 0.")
	fmt.Println("Before the failure: 5 and 6 forward via 4, 4 via the direct link [4 0].")
	fmt.Println("Failing [4 0]...")
	fmt.Println()

	rep, err := bgploop.Run(scenario)
	if err != nil {
		log.Fatal(err)
	}

	if err := rep.SummaryTable().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Println("Transient loops observed (exact intervals from the FIB history):")
	if err := rep.LoopTable().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	for _, l := range rep.Loops {
		if l.Size() == 2 && l.Nodes[0] == 5 && l.Nodes[1] == 6 {
			fmt.Printf("The canonical 5<->6 loop lasted %v: it formed the moment both nodes\n", l.Duration())
			fmt.Println("switched to each other's obsolete path through the dead link, and broke")
			fmt.Println("when 5's new path (5 6 4 0)->(5 6 3 2 1 0) information reached 6.")
		}
	}
	fmt.Printf("\n%d of %d packets sent during convergence died of TTL exhaustion (ratio %.3f).\n",
		rep.TTLExhaustions, rep.PacketsSent, rep.LoopingRatio)
}
