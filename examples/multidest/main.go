// Multidest runs the multi-prefix extension: every AS in an Internet-like
// topology originates its own prefix, one busy provider fails, and the
// harness measures how the single failure disturbs routing to every
// destination at once — which destinations are affected, where the
// transient loops concentrate, and how much traffic is lost network-wide.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"

	"bgploop/internal/bgp"
	"bgploop/internal/experiment"
	"bgploop/internal/report"
	"bgploop/internal/topology"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	g, err := topology.InternetLike(48, 4)
	if err != nil {
		return err
	}
	// Fail the busiest mid-tier AS: maximum blast radius.
	var busiest topology.Node
	for _, v := range g.Nodes() {
		if g.Degree(v) > g.Degree(busiest) {
			busiest = v
		}
	}

	s := experiment.MultiScenario{
		Graph:    g,
		Event:    experiment.TDown,
		FailNode: busiest,
		BGP:      bgp.DefaultConfig(),
		Seed:     4,
	}
	res, err := experiment.RunMulti(s)
	if err != nil {
		return err
	}

	fmt.Printf("Failure of AS %d (degree %d) in %s: convergence %v, %d/%d destinations affected.\n\n",
		busiest, g.Degree(busiest), g.Name(), res.ConvergenceTime.Round(res.ConvergenceTime/100),
		res.AffectedDests, len(res.PerDest))

	// Rank destinations by TTL exhaustions.
	type row struct {
		dest topology.Node
		out  *experiment.DestOutcome
	}
	var rows []row
	for dest, out := range res.PerDest {
		if out.Replay.TTLExhausted > 0 || len(out.Loops) > 0 {
			rows = append(rows, row{dest, out})
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		return rows[i].out.Replay.TTLExhausted > rows[j].out.Replay.TTLExhausted
	})
	tbl := &report.Table{
		Title:   "Destinations with transient loops (top 10 by TTL exhaustions)",
		Columns: []string{"dest", "degree", "exhaustions", "loops", "max_loop", "delivered", "no_route"},
	}
	for i, r := range rows {
		if i >= 10 {
			break
		}
		tbl.AddFloats(fmt.Sprintf("%d", r.dest),
			float64(g.Degree(r.dest)),
			float64(r.out.Replay.TTLExhausted),
			float64(len(r.out.Loops)),
			float64(r.out.LoopStats.MaxSize),
			float64(r.out.Replay.Delivered),
			float64(r.out.Replay.NoRoute))
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	fmt.Printf("\nNetwork-wide: %d packets sent during convergence, %d TTL exhaustions (ratio %.3f),\n",
		res.PacketsSent, res.TTLExhaustions, res.LoopingRatio)
	fmt.Printf("%d transient loops across %d affected destinations, %d updates exchanged.\n",
		res.LoopCount, res.AffectedDests, res.UpdatesSent)
	fmt.Println("\nNote how looping concentrates on destinations homed at or behind the failed")
	fmt.Println("provider — the paper's single-destination experiments are the worst-case slice")
	fmt.Println("of this picture.")
	return nil
}
