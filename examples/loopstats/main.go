// Loopstats computes the per-loop statistics the paper's §6 lists as next
// steps: the distribution of individual transient-loop sizes and
// durations, extracted exactly from the FIB-change history rather than
// inferred from TTL exhaustions. It also checks every observed loop
// against the §3.2 worst-case resolution bound (m-1) x MRAI.
package main

import (
	"fmt"
	"log"
	"os"
	"sort"
	"time"

	"bgploop"
	"bgploop/internal/experiment"
	"bgploop/internal/loopanalysis"
	"bgploop/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := bgploop.DefaultConfig()
	gen := experiment.InternetTDown(75, cfg, 3)

	var all []loopanalysis.Loop
	trials := 5
	for i := 0; i < trials; i++ {
		s, err := gen(i)
		if err != nil {
			return err
		}
		rep, err := bgploop.Run(s)
		if err != nil {
			return err
		}
		all = append(all, rep.Loops...)
		if len(rep.BoundViolations) > 0 {
			fmt.Printf("trial %d: %d loops exceeded the (m-1) x MRAI bound!\n",
				i, len(rep.BoundViolations))
		}
	}

	fmt.Printf("Collected %d transient-loop intervals from %d Internet-like T_down runs.\n\n", len(all), trials)

	// Size distribution — Hengartner et al. observed that more than half
	// of real-world loops involve only two nodes; the simulation shows
	// the same skew.
	bySize := make(map[int][]time.Duration)
	for _, l := range all {
		bySize[l.Size()] = append(bySize[l.Size()], l.Duration())
	}
	sizes := make([]int, 0, len(bySize))
	for s := range bySize {
		sizes = append(sizes, s)
	}
	sort.Ints(sizes)

	tbl := &report.Table{
		Title:   "Loop size distribution",
		Columns: []string{"size", "count", "share", "mean_duration_s", "max_duration_s", "bound_s"},
	}
	for _, s := range sizes {
		durs := bySize[s]
		var sum, max time.Duration
		for _, d := range durs {
			sum += d
			if d > max {
				max = d
			}
		}
		mean := sum / time.Duration(len(durs))
		tbl.AddFloats(fmt.Sprintf("%d", s),
			float64(len(durs)),
			float64(len(durs))/float64(len(all)),
			mean.Seconds(),
			max.Seconds(),
			loopanalysis.WorstCaseResolution(s, cfg.MRAI).Seconds())
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}

	stats := loopanalysis.Summarize(all)
	fmt.Printf("\nLargest loop: %d nodes; longest-lived loop: %v; total loop-time: %v.\n",
		stats.MaxSize, stats.MaxDuration.Round(time.Millisecond), stats.TotalLoopTime.Round(time.Millisecond))
	two := len(bySize[2])
	fmt.Printf("2-node loops account for %.0f%% of all loops (Hengartner et al. saw >50%% in the wild).\n",
		100*float64(two)/float64(len(all)))

	// Loop-escape delay (needs deliverable packets, so a T_long workload):
	// Hengartner et al. measured that packets which escaped a loop were
	// delayed by an additional 25-1300 ms.
	fmt.Println("\nLoop-escape delay on T_long workloads (75-AS Internet-like):")
	genL := experiment.InternetTLong(75, cfg, 3)
	escaped, escapedHops, escapedMax, deliveredMean, samples := 0, 0, 0, 0.0, 0.0
	for i := 0; i < trials; i++ {
		s, err := genL(i)
		if err != nil {
			return err
		}
		rep, err := bgploop.Run(s)
		if err != nil {
			return err
		}
		escaped += rep.Replay.EscapedHops.Count
		escapedHops += rep.Replay.EscapedHops.Total
		if rep.Replay.EscapedHops.Max > escapedMax {
			escapedMax = rep.Replay.EscapedHops.Max
		}
		if rep.Replay.DeliveredHops.Count > 0 {
			deliveredMean += rep.Replay.DeliveredHops.Mean()
			samples++
		}
	}
	if escaped == 0 {
		fmt.Println("no packet escaped a loop in these trials (loops were shorter than the packet lifetime)")
		return nil
	}
	const linkDelay = 2 * time.Millisecond
	meanEscaped := float64(escapedHops) / float64(escaped)
	fmt.Printf("%d delivered packets had first looped; mean path %.1f hops (vs %.1f overall), max %d hops\n",
		escaped, meanEscaped, deliveredMean/samples, escapedMax)
	fmt.Printf("=> mean extra delay ~%v, max ~%v (Hengartner et al.: 25-1300 ms)\n",
		time.Duration(meanEscaped-deliveredMean/samples)*linkDelay,
		time.Duration(escapedMax)*linkDelay)
	return nil
}
