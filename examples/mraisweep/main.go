// Mraisweep demonstrates the paper's Observation 1: both BGP convergence
// time and overall looping duration grow linearly with the MRAI timer
// value, while the looping ratio stays roughly constant (Observation 2).
// It sweeps MRAI on a Clique T_down and a B-Clique T_long workload and
// fits least-squares lines to the measured series.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bgploop/internal/bgp"
	"bgploop/internal/experiment"
	"bgploop/internal/metrics"
	"bgploop/internal/report"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	mrais := []time.Duration{
		5 * time.Second, 10 * time.Second, 15 * time.Second,
		20 * time.Second, 30 * time.Second, 45 * time.Second,
	}
	workloads := []struct {
		name     string
		scenario func(cfg bgp.Config) experiment.Scenario
	}{
		{"clique-10 T_down", func(cfg bgp.Config) experiment.Scenario {
			return experiment.CliqueTDown(10, cfg, 1)
		}},
		{"bclique-8 T_long", func(cfg bgp.Config) experiment.Scenario {
			return experiment.BCliqueTLong(8, cfg, 1)
		}},
	}

	for _, w := range workloads {
		tbl := &report.Table{
			Title:   w.name,
			Columns: []string{"mrai_s", "convergence_s", "looping_duration_s", "looping_ratio"},
		}
		var xs, conv, loop, ratio []float64
		for _, m := range mrais {
			cfg := bgp.DefaultConfig()
			cfg.MRAI = m
			agg, _, err := experiment.RunTrials(experiment.Repeat(w.scenario(cfg)), 3)
			if err != nil {
				return err
			}
			xs = append(xs, m.Seconds())
			conv = append(conv, agg.ConvergenceSec.Mean)
			loop = append(loop, agg.LoopingDurationSec.Mean)
			ratio = append(ratio, agg.LoopingRatio.Mean)
			tbl.AddFloats(fmt.Sprintf("%g", m.Seconds()),
				agg.ConvergenceSec.Mean, agg.LoopingDurationSec.Mean, agg.LoopingRatio.Mean)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}

		convFit, err := metrics.FitLine(xs, conv)
		if err != nil {
			return err
		}
		loopFit, err := metrics.FitLine(xs, loop)
		if err != nil {
			return err
		}
		ratioStats := metrics.NewSample(ratio)
		fmt.Printf("convergence ~ %.2f * MRAI + %.1f  (R^2 = %.4f)\n", convFit.Slope, convFit.Intercept, convFit.R2)
		fmt.Printf("looping     ~ %.2f * MRAI + %.1f  (R^2 = %.4f)\n", loopFit.Slope, loopFit.Intercept, loopFit.R2)
		fmt.Printf("looping ratio stays ~constant: %s\n\n", ratioStats)
	}
	fmt.Println("Observation 1 holds when both R^2 values are close to 1; Observation 2")
	fmt.Println("holds when the looping-ratio standard deviation is small relative to its mean.")
	return nil
}
