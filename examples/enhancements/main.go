// Enhancements compares standard BGP against the four convergence
// enhancements of the paper's §5 (SSLD, WRATE, Assertion, Ghost Flushing)
// on three workloads, reproducing the qualitative content of Figures 8
// and 9: Assertion and Ghost Flushing slash both convergence time and
// packet looping, SSLD tracks standard BGP closely, and WRATE trades
// shorter individual loops for a much longer convergence tail.
package main

import (
	"fmt"
	"log"
	"os"

	"bgploop"
	"bgploop/internal/experiment"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := bgploop.DefaultConfig()
	tdownGen := experiment.InternetTDown(48, cfg, 1)
	internetTDown, err := tdownGen(0)
	if err != nil {
		return err
	}

	workloads := []struct {
		desc     string
		scenario bgploop.Scenario
	}{
		{"Clique of 12 ASes, destination becomes unreachable (T_down)",
			bgploop.CliqueTDown(12, cfg, 1)},
		{"B-Clique of 10 (20 ASes), shortcut link fails (T_long)",
			bgploop.BCliqueTLong(10, cfg, 1)},
		{"Internet-like 48-AS topology, stub destination fails (T_down)",
			internetTDown},
	}

	for _, w := range workloads {
		fmt.Println(w.desc)
		tbl, err := bgploop.CompareEnhancements(w.scenario)
		if err != nil {
			return err
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
	}

	fmt.Println("Reading the tables (paper §5, Observation 3):")
	fmt.Println(" - assertion and ghostflush cut convergence and TTL exhaustions by large factors;")
	fmt.Println(" - ssld stays close to standard BGP;")
	fmt.Println(" - wrate lengthens convergence by delaying withdrawals behind the MRAI timer.")
	return nil
}
