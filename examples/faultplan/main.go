// Faultplan demonstrates the declarative fault-script engine: instead of
// the paper's single T_down/T_long event, a plan drives a B-Clique
// network through a multi-phase outage — a warm-up flap burst on the
// shortcut link, a correlated two-link (SRLG-style) cut, a BGP session
// reset on a surviving clique link, and finally a repair — with
// convergence and looping metrics measured per phase.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"bgploop/internal/bgp"
	"bgploop/internal/core"
	"bgploop/internal/experiment"
	"bgploop/internal/faultplan"
	"bgploop/internal/topology"
)

func main() {
	const n = 5
	g := topology.BClique(n) // 10 nodes: chain 0..4, clique 5..9
	shortcut := topology.BCliqueShortcut(n)

	plan := &faultplan.Plan{
		Name: "srlg-outage",
		Phases: []faultplan.Phase{
			{
				// Unmeasured warm-up: three fast flaps of the shortcut
				// (with damping enabled these would accrue penalty).
				Name:  "flap-burst",
				Delay: time.Second,
				Actions: []faultplan.Action{
					faultplan.Flap(shortcut, 3, 200*time.Millisecond),
				},
			},
			{
				// The measured outage: the shortcut and the chain's backup
				// attachment fail together — one conduit, two logical
				// links — and half a second later a clique session flaps.
				Name:    "srlg-cut",
				Delay:   time.Second,
				Measure: true,
				Role:    faultplan.RoleMain,
				Actions: []faultplan.Action{
					faultplan.FailGroup(shortcut, topology.NormEdge(n-1, 2*n-1)),
					faultplan.ResetSession(topology.NormEdge(n, n+1)).AtOffset(500 * time.Millisecond),
				},
			},
			{
				// Repair and re-convergence.
				Name:    "repair",
				Delay:   2 * time.Second,
				Measure: true,
				Role:    faultplan.RoleRecovery,
				Actions: []faultplan.Action{
					faultplan.RestoreGroup(shortcut, topology.NormEdge(n-1, 2*n-1)),
				},
			},
		},
	}

	s := experiment.Scenario{
		Graph: g,
		Dest:  0,
		BGP:   bgp.DefaultConfig(),
		Seed:  1,
		// Watchdog: generous per-phase budget, 1h virtual-time ceiling.
		FaultPlan:        plan,
		PhaseEventBudget: 5_000_000,
		Horizon:          time.Hour,
	}

	fmt.Printf("Fault plan %q on %s (destination AS 0):\n", plan.Name, g.Name())
	for i, ph := range plan.Phases {
		measured := ""
		if ph.Measure {
			measured = " [measured]"
		}
		fmt.Printf("  phase %d %-10s +%v%s\n", i, ph.Name, ph.Delay, measured)
		for _, a := range ph.Actions {
			fmt.Printf("      %v\n", a)
		}
	}
	fmt.Println()

	rep, err := core.Run(s)
	if err != nil {
		log.Fatal(err)
	}
	if err := rep.PhaseTable().WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Printf("Main phase (%s): convergence %v, looping ratio %.3f, %d TTL deaths.\n",
		"srlg-cut", rep.ConvergenceTime.Round(time.Millisecond), rep.LoopingRatio, rep.TTLExhaustions)
	if rep.Recovery != nil {
		fmt.Printf("Recovery: convergence %v after repair at %v.\n",
			rep.Recovery.ConvergenceTime.Round(time.Millisecond),
			rep.Recovery.RestoreAt.Round(time.Millisecond))
	}
}
