// Command bgpfig regenerates the paper's evaluation figures (4a-9d) as
// text tables or CSV.
//
// Examples:
//
//	bgpfig -fig 4a                 # one figure at paper scale
//	bgpfig -fig all                # every figure
//	bgpfig -fig 8a,8b -quick       # reduced grid, seconds per figure
//	bgpfig -fig 5a -csv -out fig5a.csv
//	bgpfig -fig all -j 8 -cache-dir ~/.cache/bgploop -resume
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"bgploop/internal/buildinfo"
	"bgploop/internal/experiment"
	"bgploop/internal/figures"
	"bgploop/internal/sweep"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpfig", flag.ContinueOnError)
	var (
		versionF = fs.Bool("version", false, "print the build-info stamp (module version, VCS revision) and exit")

		fig    = fs.String("fig", "", "figure ID (4a..9d), comma-separated list, or 'all'")
		quick  = fs.Bool("quick", false, "use the reduced smoke-test grid instead of paper scale")
		csv    = fs.Bool("csv", false, "emit CSV")
		out    = fs.String("out", "", "write to file instead of stdout")
		seed   = fs.Int64("seed", 0, "override the base seed (0 keeps the default)")
		j      = fs.Int("j", 0, "trial parallelism per sweep: 0 = GOMAXPROCS, 1 = sequential (figures are byte-identical at any width)")
		cache  = fs.String("cache-dir", "", "content-addressed result cache; unchanged trials are served from disk across runs")
		resume = fs.Bool("resume", false, "resume interrupted sweeps from their checkpoint journals (requires -cache-dir)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionF {
		fmt.Println("bgpfig", buildinfo.Read())
		return nil
	}
	if *resume && *cache == "" {
		return fmt.Errorf("-resume requires -cache-dir")
	}
	if *fig == "" {
		return fmt.Errorf("missing -fig; known: %s, extensions: %s, or 'all'/'ext'",
			strings.Join(figures.IDs(), ", "), strings.Join(figures.ExtensionIDs(), ", "))
	}

	var ids []string
	switch *fig {
	case "all":
		ids = figures.IDs()
	case "ext":
		ids = figures.ExtensionIDs()
	default:
		for _, id := range strings.Split(*fig, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	sc := figures.FullScale()
	if *quick {
		sc = figures.QuickScale()
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	// Ctrl-C cancels in-flight trials cooperatively; with -cache-dir and
	// -resume the next invocation picks up where this one stopped.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	var stats sweep.Stats
	sc.Sweep = experiment.SweepOptions{
		Workers:  *j,
		CacheDir: *cache,
		Resume:   *resume,
		Context:  ctx,
		Stats:    &stats,
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "bgpfig: close:", cerr)
			}
		}()
		w = f
	}

	for i, id := range ids {
		start := time.Now()
		tbl, err := figures.Run(id, sc)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if *csv {
			if _, err := fmt.Fprintf(w, "# Figure %s: %s\n", id, figures.Caption(id)); err != nil {
				return err
			}
			if err := tbl.WriteCSV(w); err != nil {
				return err
			}
		} else if err := tbl.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bgpfig: figure %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "bgpfig: %d trials total: %d simulated, %d cache hits, %d resumed\n",
		stats.Trials, stats.Executed, stats.CacheHits, stats.Resumed)
	return nil
}
