// Command bgpfig regenerates the paper's evaluation figures (4a-9d) as
// text tables or CSV.
//
// Examples:
//
//	bgpfig -fig 4a                 # one figure at paper scale
//	bgpfig -fig all                # every figure
//	bgpfig -fig 8a,8b -quick       # reduced grid, seconds per figure
//	bgpfig -fig 5a -csv -out fig5a.csv
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"bgploop/internal/figures"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpfig:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpfig", flag.ContinueOnError)
	var (
		fig   = fs.String("fig", "", "figure ID (4a..9d), comma-separated list, or 'all'")
		quick = fs.Bool("quick", false, "use the reduced smoke-test grid instead of paper scale")
		csv   = fs.Bool("csv", false, "emit CSV")
		out   = fs.String("out", "", "write to file instead of stdout")
		seed  = fs.Int64("seed", 0, "override the base seed (0 keeps the default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *fig == "" {
		return fmt.Errorf("missing -fig; known: %s, extensions: %s, or 'all'/'ext'",
			strings.Join(figures.IDs(), ", "), strings.Join(figures.ExtensionIDs(), ", "))
	}

	var ids []string
	switch *fig {
	case "all":
		ids = figures.IDs()
	case "ext":
		ids = figures.ExtensionIDs()
	default:
		for _, id := range strings.Split(*fig, ",") {
			ids = append(ids, strings.TrimSpace(id))
		}
	}

	sc := figures.FullScale()
	if *quick {
		sc = figures.QuickScale()
	}
	if *seed != 0 {
		sc.Seed = *seed
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "bgpfig: close:", cerr)
			}
		}()
		w = f
	}

	for i, id := range ids {
		start := time.Now()
		tbl, err := figures.Run(id, sc)
		if err != nil {
			return err
		}
		if i > 0 {
			if _, err := fmt.Fprintln(w); err != nil {
				return err
			}
		}
		if *csv {
			if _, err := fmt.Fprintf(w, "# Figure %s: %s\n", id, figures.Caption(id)); err != nil {
				return err
			}
			if err := tbl.WriteCSV(w); err != nil {
				return err
			}
		} else if err := tbl.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bgpfig: figure %s done in %s\n", id, time.Since(start).Round(time.Millisecond))
	}
	return nil
}
