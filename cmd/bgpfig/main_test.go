package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickFigureToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig.txt")
	if err := run([]string{"-fig", "4a", "-quick", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "Figure 4a") || !strings.Contains(string(data), "clique_size") {
		t.Errorf("output missing figure content:\n%s", data)
	}
}

func TestRunCSV(t *testing.T) {
	out := filepath.Join(t.TempDir(), "fig.csv")
	if err := run([]string{"-fig", "7a", "-quick", "-csv", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	s := string(data)
	if !strings.HasPrefix(s, "# Figure 7a") {
		t.Errorf("CSV missing header comment:\n%s", s)
	}
	if !strings.Contains(s, "mrai_s,ttl_exhaustions,looping_ratio") {
		t.Errorf("CSV missing columns:\n%s", s)
	}
}

func TestRunMultipleFigures(t *testing.T) {
	out := filepath.Join(t.TempDir(), "figs.txt")
	if err := run([]string{"-fig", "5a, x6", "-quick", "-seed", "2", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Figure 5a", "Figure x6"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(nil); err == nil {
		t.Error("missing -fig accepted")
	}
	if err := run([]string{"-fig", "zz", "-quick"}); err == nil {
		t.Error("unknown figure accepted")
	}
	if err := run([]string{"-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-fig", "4a", "-quick", "-out", "/nonexistent-dir/x.txt"}); err == nil {
		t.Error("unwritable output accepted")
	}
}
