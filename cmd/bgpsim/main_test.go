package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestBuildScenario(t *testing.T) {
	tests := []struct {
		name    string
		topo    string
		size    int
		event   string
		enhance string
		wantErr bool
	}{
		{"clique tdown", "clique", 5, "tdown", "standard", false},
		{"clique tlong invalid", "clique", 5, "tlong", "standard", true},
		{"bclique tlong", "bclique", 4, "tlong", "standard", false},
		{"bclique tdown", "bclique", 4, "tdown", "standard", false},
		{"chain tdown", "chain", 4, "tdown", "standard", false},
		{"chain tlong invalid", "chain", 4, "tlong", "standard", true},
		{"ring tlong", "ring", 5, "tlong", "standard", false},
		{"ring tdown", "ring", 5, "tdown", "standard", false},
		{"figure1 tlong", "figure1", 0, "tlong", "standard", false},
		{"figure1 tdown", "figure1", 0, "tdown", "standard", false},
		{"figure2 tlong", "figure2", 3, "tlong", "standard", false},
		{"figure2 tdown", "figure2", 3, "tdown", "standard", false},
		{"internet tdown", "internet", 20, "tdown", "standard", false},
		{"internet tlong", "internet", 20, "tlong", "standard", false},
		{"unknown topo", "torus", 5, "tdown", "standard", true},
		{"unknown event", "clique", 5, "sideways", "standard", true},
		{"unknown enhancement", "clique", 5, "tdown", "turbo", true},
		{"ssld", "clique", 5, "tdown", "ssld", false},
		{"wrate", "clique", 5, "tdown", "wrate", false},
		{"assertion", "clique", 5, "tdown", "assertion", false},
		{"ghostflush", "clique", 5, "tdown", "ghostflush", false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := buildScenario(tt.topo, tt.size, tt.event, 30*time.Second, tt.enhance, 1)
			if tt.wantErr {
				if err == nil {
					t.Errorf("accepted")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Validate(); err != nil {
				t.Errorf("built scenario invalid: %v", err)
			}
		})
	}
}

func TestRunEndToEnd(t *testing.T) {
	cases := [][]string{
		{"-topo", "figure1", "-event", "tlong", "-loops"},
		{"-topo", "clique", "-size", "4", "-event", "tdown", "-csv"},
		{"-topo", "figure1", "-event", "tlong", "-trace", "5"},
		{"-topo", "clique", "-size", "4", "-event", "tdown", "-compare"},
		{"-topo", "clique", "-size", "4", "-event", "tdown", "-compare", "-csv"},
	}
	for _, args := range cases {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-topo", "nope"}); err == nil {
		t.Error("unknown topology accepted")
	}
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Error("bad flag accepted")
	}
}

func TestRunScenarioFileAndJSON(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "s.json")
	spec := `{"topology": {"family": "clique", "size": 4}, "event": "tdown", "seed": 2}`
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing scenario file accepted")
	}
}

func TestRunWireAndMRTDumps(t *testing.T) {
	dir := t.TempDir()
	wirePath := filepath.Join(dir, "t.bgp")
	mrtPath := filepath.Join(dir, "t.mrt")
	if err := run([]string{"-topo", "figure1", "-event", "tlong", "-wiredump", wirePath, "-mrt", mrtPath}); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{wirePath, mrtPath} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestRunFaultPlanScenarioFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "plan.json")
	spec := `{
		"topology": {"family": "ring", "size": 5},
		"seed": 3,
		"faultPlan": {
			"name": "two-cuts",
			"phases": [
				{"name": "cut-a", "delaySeconds": 1, "measure": true, "role": "main",
				 "actions": [{"op": "linkDown", "link": [1, 2]}]},
				{"name": "cut-b", "delaySeconds": 1, "measure": true,
				 "actions": [{"op": "linkUp", "link": [1, 2]}]}
			]
		}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-scenario", path, "-csv", "-json"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWatchdogFlags(t *testing.T) {
	// A 10ms horizon cannot fit initial convergence: the run must fail
	// with the structured non-quiescence diagnosis.
	err := run([]string{"-topo", "clique", "-size", "4", "-event", "tdown", "-horizon", "10ms"})
	if err == nil {
		t.Fatal("10ms horizon accepted")
	}
	if !strings.Contains(err.Error(), "did not quiesce") {
		t.Errorf("err = %v, want a quiescence diagnosis", err)
	}
	err = run([]string{"-topo", "clique", "-size", "6", "-event", "tdown", "-phase-budget", "40"})
	if err == nil {
		t.Fatal("40-event phase budget accepted")
	}
	if !strings.Contains(err.Error(), "verdict") {
		t.Errorf("err = %v, want a verdict in the diagnosis", err)
	}
}

func TestRunGuardFlag(t *testing.T) {
	if err := run([]string{"-topo", "clique", "-size", "4", "-event", "tdown", "-guard", "full"}); err != nil {
		t.Fatalf("guarded run failed: %v", err)
	}
	if err := run([]string{"-topo", "clique", "-size", "4", "-event", "tdown", "-guard", "sometimes"}); err == nil {
		t.Error("unknown guard cadence accepted")
	}
}

func TestRunShrinkEndToEnd(t *testing.T) {
	dir := t.TempDir()
	// A guarded scenario with the corrupted-FIB self-test hook must fail;
	// a cache-backed sweep then writes the forensic bundle under
	// <cache>/forensics/, which -shrink reduces to a minimal reproducer.
	path := filepath.Join(dir, "s.json")
	spec := `{
		"topology": {"family": "clique", "size": 5},
		"event": "tdown", "seed": 3,
		"guard": {"cadence": "full", "corruptFIBNode": 2}
	}`
	if err := os.WriteFile(path, []byte(spec), 0o600); err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	err := run([]string{"-scenario", path, "-trials", "1", "-cache-dir", cacheDir})
	if err == nil {
		t.Fatal("corrupted-FIB sweep succeeded")
	}
	if !strings.Contains(err.Error(), "rib-fib-coherence") {
		t.Fatalf("err = %v, want a rib-fib-coherence violation", err)
	}
	forensics, ferr := os.ReadDir(filepath.Join(cacheDir, "forensics"))
	if ferr != nil || len(forensics) != 1 {
		t.Fatalf("forensics dir: %v (%d entries), want 1 bundle", ferr, len(forensics))
	}
	bundle := filepath.Join(cacheDir, "forensics", forensics[0].Name())

	out := filepath.Join(dir, "min.json")
	if err := run([]string{"-shrink", bundle, "-shrink-out", out, "-shrink-runs", "128"}); err != nil {
		t.Fatalf("-shrink: %v", err)
	}
	// The shrunk spec is itself a runnable -scenario file; it must still
	// reproduce the violation.
	err = run([]string{"-scenario", out})
	if err == nil || !strings.Contains(err.Error(), "rib-fib-coherence") {
		t.Errorf("shrunk scenario err = %v, want the preserved violation", err)
	}

	if err := run([]string{"-shrink", filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing bundle accepted")
	}
}
