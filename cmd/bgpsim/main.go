// Command bgpsim runs a single BGP loop-study scenario and prints the
// paper's metrics, the exact transient-loop intervals, and optionally an
// update trace. With -trials it runs a seed sweep on the parallel
// executor and prints the aggregate instead.
//
// Examples:
//
//	bgpsim -topo clique -size 15 -event tdown
//	bgpsim -topo bclique -size 15 -event tlong -mrai 60s
//	bgpsim -topo internet -size 110 -event tdown -seed 7 -loops
//	bgpsim -topo figure1 -event tlong -enhance ssld
//	bgpsim -topo internet -size 110 -event tdown -trials 50 -j 8 -cache-dir ~/.cache/bgploop
//	bgpsim -topo clique -size 15 -event tdown -guard full
//	bgpsim -shrink ~/.cache/bgploop/forensics/bundle-0123456789abcdef.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgploop/internal/bgp"
	"bgploop/internal/buildinfo"
	"bgploop/internal/core"
	"bgploop/internal/experiment"
	"bgploop/internal/invariant"
	"bgploop/internal/metrics"
	"bgploop/internal/report"
	"bgploop/internal/safety"
	"bgploop/internal/sweep"
	"bgploop/internal/topology"
	"bgploop/internal/transport"
	"bgploop/internal/wire"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpsim", flag.ContinueOnError)
	var (
		versionF  = fs.Bool("version", false, "print the build-info stamp (module version, VCS revision) and exit")
		digestF   = fs.Bool("digest", false, "print only the canonical result digest (single run) or aggregate digest (sweep) — the provenance handle bgpd serves")
		scenarioF = fs.String("scenario", "", "run a JSON scenario file instead of building one from flags")
		jsonOut   = fs.Bool("json", false, "emit the run summary as JSON")
		topo      = fs.String("topo", "clique", "topology family: clique, bclique, chain, ring, figure1, figure2, internet")
		size      = fs.Int("size", 15, "topology size parameter (clique n, bclique n => 2n nodes, internet n)")
		event     = fs.String("event", "tdown", "failure event: tdown or tlong")
		mrai      = fs.Duration("mrai", bgp.DefaultMRAI, "MRAI timer value")
		enhance   = fs.String("enhance", "standard", "protocol variant: standard, ssld, wrate, assertion, ghostflush")
		seed      = fs.Int64("seed", 1, "simulation seed")
		showLoops = fs.Bool("loops", false, "print the exact per-loop intervals")
		horizon   = fs.Duration("horizon", 0, "virtual-time cap; non-quiescence past it aborts with a diagnosis (0 = unlimited)")
		phaseBudg = fs.Uint64("phase-budget", 0, "per-phase event budget for the watchdog (0 = remaining global budget)")
		showTrace = fs.Int("trace", 0, "print up to N protocol events from the failure onward")
		wireDump  = fs.String("wiredump", "", "write the update trace as concatenated RFC 4271 UPDATE messages to this file")
		mrtDump   = fs.String("mrt", "", "write the update trace as MRT BGP4MP_MESSAGE records (RFC 6396) to this file")
		compare   = fs.Bool("compare", false, "run all five protocol variants side by side")
		csv       = fs.Bool("csv", false, "emit CSV instead of aligned text")
		trials    = fs.Int("trials", 1, "run a sweep of N trials (seeds seed, seed+1, ...) and print the aggregate")
		workers   = fs.Int("j", 0, "sweep parallelism: 0 = GOMAXPROCS, 1 = the sequential path (output is byte-identical at any width)")
		cacheDir  = fs.String("cache-dir", "", "content-addressed result cache; unchanged trials are served from disk instead of re-simulated")
		resume    = fs.Bool("resume", false, "resume an interrupted sweep from its checkpoint journal (requires -cache-dir)")
		jsync     = fs.Int("journal-sync", 0, "fsync the checkpoint journal every N trial appends (0 = only on close, 1 = every append; higher N trades durability for fewer fsyncs)")
		lossF     = fs.Float64("loss", 0, "per-message loss probability on every link; loss is masked by retransmission (delay, not drop) up to the retry cap")
		holdF     = fs.Duration("hold", 0, "BGP hold time; non-zero enables the session FSM (keepalive generation, hold-expiry teardown, backoff re-establishment). Keepalives only arm over impaired links, so combine with bounded degrade windows (a faultPlan degrade+undegrade pair) rather than a permanent -loss, which never quiesces")
		keepF     = fs.Duration("keepalive", 0, "keepalive interval (default hold/3; requires -hold)")
		backoffF  = fs.Duration("reconnect-backoff", 0, "session re-establishment backoff base, doubling per failed attempt (default 30s; requires -hold)")
		guardF    = fs.String("guard", "", "runtime invariant guard cadence: off, phase, every-n, full (default: $BGPSIM_GUARD, else off)")
		preflight = fs.String("preflight", "", "static safety analysis before simulating: warn (report and continue) or strict (refuse UNSAFE scenarios); SAFE runs get a finite watchdog horizon derived from the static bound")
		shrinkF   = fs.String("shrink", "", "shrink a forensic bundle file to a minimal reproducing scenario spec and exit")
		shrinkOut = fs.String("shrink-out", "", "write the shrunk scenario spec to this file instead of stdout")
		shrinkN   = fs.Int("shrink-runs", 0, "cap on candidate trials executed by -shrink (0 = library default)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionF {
		fmt.Println("bgpsim", buildinfo.Read())
		return nil
	}

	if *shrinkF != "" {
		return runShrink(*shrinkF, *shrinkOut, *shrinkN)
	}

	// Ctrl-C cancels in-flight simulations cooperatively: the experiment
	// watchdog polls the context between kernel event chunks.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var (
		scenario experiment.Scenario
		err      error
	)
	if *scenarioF != "" {
		scenario, err = experiment.LoadScenarioFile(*scenarioF)
	} else {
		scenario, err = buildScenario(*topo, *size, *event, *mrai, *enhance, *seed)
	}
	if err != nil {
		return err
	}
	if *lossF > 0 {
		var tc transport.Config
		if scenario.Transport != nil {
			tc = *scenario.Transport
		}
		tc.Loss = *lossF
		scenario.Transport = &tc
	}
	if *holdF > 0 {
		scenario.BGP.Session.HoldTime = *holdF
	}
	if *keepF > 0 {
		scenario.BGP.Session.KeepaliveInterval = *keepF
	}
	if *backoffF > 0 {
		scenario.BGP.Session.ConnectRetry = *backoffF
	}
	if *guardF != "" {
		cad, err := invariant.ParseCadence(*guardF)
		if err != nil {
			return err
		}
		scenario.Guard.Cadence = cad
	}
	if *horizon > 0 {
		scenario.Horizon = *horizon
	}
	if *phaseBudg > 0 {
		scenario.PhaseEventBudget = *phaseBudg
	}
	if *showTrace > 0 {
		// Record generously; the post-failure filter trims afterwards.
		scenario.TraceLimit = *showTrace * 64
	}
	if (*wireDump != "" || *mrtDump != "") && scenario.TraceLimit == 0 {
		scenario.TraceLimit = 1 << 20
	}
	if *preflight != "" {
		if *preflight != "warn" && *preflight != "strict" {
			return fmt.Errorf("-preflight %q: want warn or strict", *preflight)
		}
		rep, err := experiment.PreflightVerdict(scenario)
		if err != nil {
			return fmt.Errorf("preflight: %w", err)
		}
		switch rep.Verdict {
		case safety.Unsafe:
			if *preflight == "strict" {
				return fmt.Errorf("preflight: scenario is statically UNSAFE — %s\n%s\n(re-run without -preflight strict to simulate anyway)", rep.Reason, rep.Wheel)
			}
			fmt.Fprintf(os.Stderr, "bgpsim: warning: scenario is statically UNSAFE — %s\n%s\n", rep.Reason, rep.Wheel)
		case safety.Unknown:
			fmt.Fprintf(os.Stderr, "bgpsim: preflight: verdict UNKNOWN — %s\n", rep.Reason)
		case safety.Safe:
			fmt.Fprintf(os.Stderr, "bgpsim: preflight: SAFE (%s); watchdog horizon %v\n",
				rep.Proof, experiment.StaticConvergenceBound(scenario))
			scenario = experiment.WithStaticBound(scenario, rep)
		}
	}

	if *trials > 1 || *cacheDir != "" || *resume {
		if *compare || *showTrace > 0 || *wireDump != "" || *mrtDump != "" || *showLoops {
			return fmt.Errorf("-trials/-cache-dir/-resume run a sweep; -compare/-trace/-wiredump/-mrt/-loops apply to single runs only")
		}
		if *resume && *cacheDir == "" {
			return fmt.Errorf("-resume needs -cache-dir (or set an explicit journal via the library API)")
		}
		return runSweep(ctx, scenario, *trials, *workers, *cacheDir, *resume, *jsync, *csv, *jsonOut, *digestF, *preflight != "")
	}

	if *compare {
		variants, names := core.DefaultVariants()
		tbl, err := core.CompareEnhancements(scenario, variants, names)
		if err != nil {
			return err
		}
		if *csv {
			return tbl.WriteCSV(os.Stdout)
		}
		return tbl.WriteText(os.Stdout)
	}

	rep, err := core.RunContext(ctx, scenario)
	if err != nil {
		return err
	}
	if *digestF {
		// The canonical result digest: byte-identical to what bgpd serves
		// for the same spec and seed (the end-to-end parity contract).
		d, err := experiment.DigestResult(&rep.Result)
		if err != nil {
			return err
		}
		fmt.Println(d)
		return nil
	}
	if *jsonOut {
		return rep.WriteJSON(os.Stdout)
	}
	tbl := rep.SummaryTable()
	if *csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	if len(rep.Phases) > 1 {
		// Multi-phase fault plan: show the per-phase breakdown.
		fmt.Println()
		phases := rep.PhaseTable()
		if *csv {
			if err := phases.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else if err := phases.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *showLoops {
		fmt.Println()
		loops := rep.LoopTable()
		if *csv {
			if err := loops.WriteCSV(os.Stdout); err != nil {
				return err
			}
		} else if err := loops.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *wireDump != "" && rep.Trace != nil {
		f, err := os.Create(*wireDump)
		if err != nil {
			return err
		}
		n, derr := wire.DumpTrace(f, rep.Trace.Events())
		if cerr := f.Close(); derr == nil {
			derr = cerr
		}
		if derr != nil {
			return derr
		}
		fmt.Fprintf(os.Stderr, "bgpsim: wrote %d UPDATE messages to %s\n", n, *wireDump)
	}
	if *mrtDump != "" && rep.Trace != nil {
		f, err := os.Create(*mrtDump)
		if err != nil {
			return err
		}
		n, derr := wire.DumpTraceMRT(f, rep.Trace.Events())
		if cerr := f.Close(); derr == nil {
			derr = cerr
		}
		if derr != nil {
			return derr
		}
		fmt.Fprintf(os.Stderr, "bgpsim: wrote %d MRT records to %s\n", n, *mrtDump)
	}
	if *showTrace > 0 && rep.Trace != nil {
		fmt.Println()
		fmt.Printf("Protocol trace from the failure instant (%v):\n", rep.FailAt)
		printed := 0
		for _, e := range rep.Trace.Events() {
			if e.At < rep.FailAt {
				continue
			}
			if printed >= *showTrace {
				fmt.Printf("... trace truncated at %d events\n", *showTrace)
				break
			}
			fmt.Println(e)
			printed++
		}
	}
	return nil
}

// runShrink loads a forensic bundle (written by a guarded, cache-backed
// sweep under <cache-dir>/forensics/) and delta-debugs its scenario to a
// minimal reproducer with the same failure signature. The shrunk spec is
// itself a -scenario file, so the reduced failure replays directly.
func runShrink(path, outPath string, maxRuns int) error {
	b, err := invariant.ReadBundle(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bgpsim: shrinking %s (signature %q)\n", path, b.Signature)
	spec, stats, err := experiment.ShrinkFailure(b, maxRuns)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if outPath != "" {
		if err := os.WriteFile(outPath, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "bgpsim: wrote shrunk scenario to %s\n", outPath)
	} else if _, err := os.Stdout.Write(data); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bgpsim: shrunk to %d nodes, %d links in %d runs (%d reductions accepted)\n",
		spec.Topology.Size, len(spec.Topology.Edges), stats.Runs, stats.Accepted)
	return nil
}

// runSweep fans trials of the scenario (seeds seed, seed+1, ...) across
// the parallel executor and prints the aggregate. The output is
// byte-identical at every -j width.
func runSweep(ctx context.Context, s experiment.Scenario, trials, workers int, cacheDir string, resume bool, jsync int, csv, jsonOut, digest, preflight bool) error {
	agg, _, stats, err := experiment.RunSweep(experiment.Repeat(s), trials, experiment.SweepOptions{
		Workers:     workers,
		CacheDir:    cacheDir,
		Resume:      resume,
		JournalSync: jsync,
		Context:     ctx,
		Preflight:   preflight,
	})
	if err != nil {
		return err
	}
	if digest {
		d, err := experiment.DigestAggregate(agg)
		if err != nil {
			return err
		}
		fmt.Println(d)
		return nil
	}
	if jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(struct {
			Aggregate experiment.Aggregate
			Stats     sweep.Stats
		}{agg, stats})
	}
	tbl := &report.Table{
		Title:   fmt.Sprintf("sweep aggregate (%d trials, seeds %d..%d)", agg.Trials, s.Seed, s.Seed+int64(trials)-1),
		Columns: []string{"metric", "mean", "std", "min", "max"},
	}
	add := func(name string, m metrics.Sample) {
		tbl.AddFloats(name, m.Mean, m.Std, m.Min, m.Max)
	}
	add("convergence_s", agg.ConvergenceSec)
	add("looping_duration_s", agg.LoopingDurationSec)
	add("ttl_exhaustions", agg.TTLExhaustions)
	add("looping_ratio", agg.LoopingRatio)
	add("packets_sent", agg.PacketsSent)
	add("updates_sent", agg.UpdatesSent)
	add("loop_count", agg.LoopCount)
	add("max_loop_size", agg.MaxLoopSize)
	if csv {
		if err := tbl.WriteCSV(os.Stdout); err != nil {
			return err
		}
	} else if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "bgpsim: %d trials: %d simulated, %d cache hits, %d resumed\n",
		stats.Trials, stats.Executed, stats.CacheHits, stats.Resumed)
	return nil
}

func buildScenario(topo string, size int, event string, mrai time.Duration, enhance string, seed int64) (experiment.Scenario, error) {
	cfg := bgp.DefaultConfig()
	cfg.MRAI = mrai
	switch enhance {
	case "standard":
	case "ssld":
		cfg.Enhancements.SSLD = true
	case "wrate":
		cfg.Enhancements.WRATE = true
	case "assertion":
		cfg.Enhancements.Assertion = true
	case "ghostflush":
		cfg.Enhancements.GhostFlushing = true
	default:
		return experiment.Scenario{}, fmt.Errorf("unknown enhancement %q", enhance)
	}

	wantTLong := false
	switch event {
	case "tdown":
	case "tlong":
		wantTLong = true
	default:
		return experiment.Scenario{}, fmt.Errorf("unknown event %q (want tdown or tlong)", event)
	}

	switch topo {
	case "clique":
		if wantTLong {
			return experiment.Scenario{}, fmt.Errorf("tlong is not defined for cliques in the paper; use bclique or internet")
		}
		return experiment.CliqueTDown(size, cfg, seed), nil
	case "bclique":
		if !wantTLong {
			g := topology.BClique(size)
			return experiment.TDownScenario(g, 0, cfg, seed), nil
		}
		return experiment.BCliqueTLong(size, cfg, seed), nil
	case "chain":
		g := topology.Chain(size)
		if wantTLong {
			return experiment.Scenario{}, fmt.Errorf("every chain link is a bridge; tlong is undefined")
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "ring":
		g := topology.Ring(size)
		if wantTLong {
			return experiment.TLongScenario(g, 0, topology.NormEdge(0, 1), cfg, seed), nil
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "figure1":
		g := topology.Figure1()
		if wantTLong {
			return experiment.TLongScenario(g, 0, topology.Figure1FailedLink(), cfg, seed), nil
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "figure2":
		g := topology.Figure2Loop(size, size)
		if wantTLong {
			return experiment.TLongScenario(g, 0, topology.NormEdge(0, 1), cfg, seed), nil
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "internet":
		if wantTLong {
			gen := experiment.InternetTLong(size, cfg, seed)
			return gen(0)
		}
		gen := experiment.InternetTDown(size, cfg, seed)
		return gen(0)
	default:
		return experiment.Scenario{}, fmt.Errorf("unknown topology %q", topo)
	}
}
