package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBuildFamilies(t *testing.T) {
	for _, topo := range []string{"clique", "bclique", "chain", "ring", "star", "figure1", "figure2", "internet"} {
		g, err := build(topo, 8, 1)
		if err != nil {
			t.Errorf("%s: %v", topo, err)
			continue
		}
		if g.NumNodes() == 0 {
			t.Errorf("%s: empty graph", topo)
		}
	}
	if _, err := build("moebius", 8, 1); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestRunStatsAndHist(t *testing.T) {
	if err := run([]string{"-topo", "clique", "-size", "6", "-hist"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-topo", "internet", "-size", "20", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEdgeListToFile(t *testing.T) {
	out := filepath.Join(t.TempDir(), "g.topo")
	if err := run([]string{"-topo", "bclique", "-size", "4", "-out", out}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "nodes 8") {
		t.Errorf("edge list missing header:\n%s", data)
	}
}

func TestRunBadFlags(t *testing.T) {
	if err := run([]string{"-bogus"}); err == nil {
		t.Error("bad flag accepted")
	}
	if err := run([]string{"-topo", "internet", "-size", "2"}); err == nil {
		t.Error("tiny internet accepted")
	}
}
