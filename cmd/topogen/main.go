// Command topogen generates and inspects the study's AS topologies.
//
// Examples:
//
//	topogen -topo internet -size 110 -seed 1            # stats only
//	topogen -topo internet -size 29 -edges              # edge list
//	topogen -topo bclique -size 15 -edges -out b15.topo
//	topogen -topo clique -size 10 -hist                 # degree histogram
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"bgploop/internal/buildinfo"
	"bgploop/internal/topology"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "topogen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("topogen", flag.ContinueOnError)
	var (
		versionF = fs.Bool("version", false, "print the build-info stamp (module version, VCS revision) and exit")

		topo  = fs.String("topo", "internet", "family: clique, bclique, chain, ring, star, figure1, figure2, internet")
		size  = fs.Int("size", 29, "size parameter")
		seed  = fs.Int64("seed", 1, "generator seed (internet only)")
		edges = fs.Bool("edges", false, "print the edge list")
		dot   = fs.Bool("dot", false, "emit Graphviz DOT (with relationships for internet topologies)")
		hist  = fs.Bool("hist", false, "print the degree histogram")
		out   = fs.String("out", "", "write edge list to a file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionF {
		fmt.Println("topogen", buildinfo.Read())
		return nil
	}

	g, err := build(*topo, *size, *seed)
	if err != nil {
		return err
	}
	if err := g.Validate(); err != nil {
		return fmt.Errorf("generated graph failed validation: %w", err)
	}

	s := topology.Summarize(g)
	fmt.Printf("%s: nodes=%d edges=%d degree[min=%d avg=%.2f max=%d] diameter=%d connected=%v bridges=%d\n",
		g.Name(), s.Nodes, s.Edges, s.MinDegree, s.AvgDegree, s.MaxDegree, s.Diameter, s.Connected, s.Bridges)
	lows := topology.LowestDegreeNodes(g)
	if len(lows) > 12 {
		fmt.Printf("lowest-degree nodes (%d total): %v ...\n", len(lows), lows[:12])
	} else {
		fmt.Printf("lowest-degree nodes: %v\n", lows)
	}

	if *hist {
		h := topology.DegreeHistogram(g)
		degrees := make([]int, 0, len(h))
		for d := range h {
			degrees = append(degrees, d)
		}
		sort.Ints(degrees)
		for _, d := range degrees {
			fmt.Printf("degree %3d: %d nodes\n", d, h[d])
		}
	}

	if *dot {
		var rels *topology.Relationships
		if *topo == "internet" {
			_, r, err := topology.GenerateInternetRelations(topology.InternetConfig{Nodes: *size, Seed: *seed})
			if err != nil {
				return err
			}
			rels = r
		}
		return topology.WriteDOT(os.Stdout, g, rels)
	}

	if *edges || *out != "" {
		var w io.Writer = os.Stdout
		if *out != "" {
			f, err := os.Create(*out)
			if err != nil {
				return err
			}
			defer func() {
				if cerr := f.Close(); cerr != nil {
					fmt.Fprintln(os.Stderr, "topogen: close:", cerr)
				}
			}()
			w = f
		}
		if err := topology.WriteEdgeList(w, g); err != nil {
			return err
		}
	}
	return nil
}

func build(topo string, size int, seed int64) (*topology.Graph, error) {
	switch topo {
	case "clique":
		return topology.Clique(size), nil
	case "bclique":
		return topology.BClique(size), nil
	case "chain":
		return topology.Chain(size), nil
	case "ring":
		return topology.Ring(size), nil
	case "star":
		return topology.Star(size), nil
	case "figure1":
		return topology.Figure1(), nil
	case "figure2":
		return topology.Figure2Loop(size, size), nil
	case "internet":
		return topology.InternetLike(size, seed)
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}
