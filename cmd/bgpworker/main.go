// Command bgpworker is the thin fleet-worker binary: it registers with
// a bgpd coordinator (started with -dist), pulls leased chunks of sweep
// trials over /v1/work, executes them through the same experiment sweep
// engine behind bgpsim, and reports per-trial results keyed by content
// address.
//
//	bgpworker -coordinator http://host:8439 -j 2
//
// It is `bgpd -worker` without the server half. SIGINT/SIGTERM drains
// gracefully: the lease in hand is finished and reported, no new lease
// is taken, and the worker deregisters so the coordinator's live-worker
// gauge drops immediately. A second signal abandons the lease — the
// coordinator reassigns it to another worker after the lease TTL, and
// the merged sweep output is byte-identical either way.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgploop/internal/buildinfo"
	"bgploop/internal/dist"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpworker:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpworker", flag.ContinueOnError)
	var (
		versionF = fs.Bool("version", false, "print the build-info stamp and exit")

		coordinator = fs.String("coordinator", "", "coordinator base URL, e.g. http://host:8439 (required)")
		name        = fs.String("name", "", "advisory worker label sent at registration")
		j           = fs.Int("j", 1, "trial parallelism within each lease")
		cache       = fs.String("cache-dir", "", "worker-local result cache; re-leased chunks are served from disk")
		poll        = fs.Duration("poll-interval", 250*time.Millisecond, "idle wait between lease polls")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionF {
		fmt.Println("bgpworker", buildinfo.Read())
		return nil
	}
	if *coordinator == "" {
		return errors.New("-coordinator is required")
	}

	w, err := dist.NewWorker(dist.WorkerConfig{
		Coordinator:  *coordinator,
		Name:         *name,
		Parallelism:  *j,
		CacheDir:     *cache,
		PollInterval: *poll,
		Sleep: func(ctx context.Context, d time.Duration) {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
		},
	})
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "bgpworker: draining (finishing current lease)...")
		w.Drain()
		<-sigc
		fmt.Fprintln(os.Stderr, "bgpworker: abandoning lease")
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "bgpworker: joining %s (j=%d cache=%q)\n", *coordinator, *j, *cache)
	err = w.Run(ctx)
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "bgpworker: done: %d leases (%d hedged), %d trials, %d trial errors, %d transport retries\n",
		st.Leases, st.Hedged, st.Trials, st.Errors, st.Retries)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
