// Command bgpverify statically analyses BGP scenario configurations
// for convergence safety without running the simulator. For each target
// it computes the permitted-path universe, searches the dispute digraph
// for dispute wheels, and reports one of three verdicts:
//
//	SAFE    — no dispute wheel exists; convergence is guaranteed for
//	          every activation order, timing, and failure sequence.
//	UNSAFE  — a concrete dispute wheel witness was found; convergence
//	          is not guaranteed (persistent oscillation is possible).
//	UNKNOWN — analysis limits were hit before the universe was
//	          exhausted; no wheel was found in the explored part.
//
// Targets are JSON scenario spec files (or directories of them), a
// built-in topology selected with -topo/-size/-event, or the classic
// BAD GADGET oscillator via -gadget. With -candidates the tool also
// enumerates the ordered (node, fallback-path) pairs that can carry a
// transient data-plane micro-loop, and which of them SSLD or the
// path-assertion check provably eliminates.
//
// Usage:
//
//	bgpverify [flags] [spec.json|dir ...]
//	bgpverify -topo clique -size 30
//	bgpverify -gadget -require unsafe
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"bgploop/internal/bgp"
	"bgploop/internal/buildinfo"
	"bgploop/internal/experiment"
	"bgploop/internal/safety"
	"bgploop/internal/topology"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "bgpverify: %v\n", err)
		os.Exit(1)
	}
}

// target pairs a display name with the scenario to analyse.
type target struct {
	name string
	s    experiment.Scenario
}

func run(argv []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("bgpverify", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		versionF = fs.Bool("version", false, "print the build-info stamp (module version, VCS revision) and exit")

		topo    = fs.String("topo", "", "built-in topology family: clique, bclique, chain, ring, star, figure1, figure2, internet")
		size    = fs.Int("size", 10, "topology size parameter")
		event   = fs.String("event", "tdown", "failure event for built-in topologies: tdown or tlong")
		mrai    = fs.Duration("mrai", 30*time.Second, "MRAI value recorded in the scenario (does not affect the verdict)")
		enhance = fs.String("enhance", "standard", "protocol enhancements: standard, ssld, wrate, assertion, ghostflush")
		seed    = fs.Int64("seed", 1, "seed for generated topologies")
		gadget  = fs.Bool("gadget", false, "analyse the built-in BAD GADGET oscillator fixture")

		candidates = fs.Bool("candidates", false, "enumerate transient-loop candidates")
		maxCand    = fs.Int("max-candidates", 16, "cap on printed candidates (all are analysed; use 0 for no cap)")
		jsonOut    = fs.Bool("json", false, "emit machine-readable JSON reports")
		require    = fs.String("require", "", "fail unless every verdict matches: safe or unsafe")
		quiet      = fs.Bool("q", false, "verdict lines only (no witness or candidate detail)")
	)
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: bgpverify [flags] [spec.json|dir ...]\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(argv); err != nil {
		return err
	}
	if *versionF {
		fmt.Fprintln(stdout, "bgpverify", buildinfo.Read())
		return nil
	}

	var want safety.Verdict
	checkRequire := false
	switch *require {
	case "":
	case "safe":
		want, checkRequire = safety.Safe, true
	case "unsafe":
		want, checkRequire = safety.Unsafe, true
	default:
		return fmt.Errorf("-require %q: want safe or unsafe", *require)
	}

	targets, err := collectTargets(fs.Args(), *gadget, *topo, *size, *event, *mrai, *enhance, *seed)
	if err != nil {
		return err
	}
	if len(targets) == 0 {
		fs.Usage()
		return fmt.Errorf("nothing to analyse: give spec files, -topo, or -gadget")
	}

	type namedReport struct {
		Name   string         `json:"name"`
		Report *safety.Report `json:"report"`
	}
	var (
		reports    []namedReport
		mismatches []string
	)
	for _, t := range targets {
		in := experiment.SafetyInput(t.s, *candidates)
		rep, err := safety.Analyze(in)
		if err != nil {
			return fmt.Errorf("%s: %w", t.name, err)
		}
		reports = append(reports, namedReport{t.name, rep})
		if checkRequire && rep.Verdict != want {
			mismatches = append(mismatches, fmt.Sprintf("%s: got %s, want %s", t.name, rep.Verdict, want))
		}
		if !*jsonOut {
			render(stdout, t.name, rep, *quiet, *maxCand)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if len(mismatches) > 0 {
		return fmt.Errorf("verdict requirement failed:\n  %s", strings.Join(mismatches, "\n  "))
	}
	return nil
}

// collectTargets resolves positional spec paths plus the -gadget and
// -topo selections into the list of scenarios to analyse.
func collectTargets(args []string, gadget bool, topo string, size int, event string, mrai time.Duration, enhance string, seed int64) ([]target, error) {
	var targets []target
	if gadget {
		targets = append(targets, target{"BAD GADGET", experiment.BadGadget(0)})
	}
	if topo != "" {
		s, err := buildScenario(topo, size, event, mrai, enhance, seed)
		if err != nil {
			return nil, err
		}
		targets = append(targets, target{fmt.Sprintf("%s-%d-%s", topo, size, event), s})
	}
	for _, arg := range args {
		info, err := os.Stat(arg)
		if err != nil {
			return nil, err
		}
		paths := []string{arg}
		if info.IsDir() {
			paths, err = specFiles(arg)
			if err != nil {
				return nil, err
			}
			if len(paths) == 0 {
				return nil, fmt.Errorf("%s: no *.json scenario specs", arg)
			}
		}
		for _, p := range paths {
			s, err := experiment.LoadScenarioFile(p)
			if err != nil {
				return nil, err
			}
			targets = append(targets, target{p, s})
		}
	}
	return targets, nil
}

// specFiles lists the *.json files directly inside dir, sorted.
func specFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".json") {
			paths = append(paths, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// render writes the human-readable report for one target.
func render(w io.Writer, name string, rep *safety.Report, quiet bool, maxCand int) {
	switch rep.Verdict {
	case safety.Safe:
		fmt.Fprintf(w, "%s: SAFE (%s) — %d nodes, %d edges\n", name, rep.Proof, rep.Nodes, rep.Edges)
	case safety.Unsafe:
		fmt.Fprintf(w, "%s: UNSAFE — %s\n", name, rep.Reason)
	case safety.Unknown:
		fmt.Fprintf(w, "%s: UNKNOWN — %s\n", name, rep.Reason)
	}
	if quiet {
		return
	}
	if rep.Universe != nil {
		fmt.Fprintf(w, "  universe: %d permitted paths, %d dispute states, %d arcs\n",
			rep.Universe.Paths, rep.Universe.States, rep.Universe.Arcs)
	}
	if rep.Wheel != nil {
		fmt.Fprintf(w, "  %s\n", indent(rep.Wheel.String(), "  "))
	}
	if rep.Candidates != nil {
		st := rep.CandidateStats
		fmt.Fprintf(w, "  transient-loop candidates: %d pair(s), %d mutual, %d SSLD-eliminable, %d assertion-eliminable, %d suppressed\n",
			st.Pairs, st.Mutual, st.SSLDEliminable, st.AssertionEliminable, st.Suppressed)
		shown := len(rep.Candidates)
		if maxCand > 0 && shown > maxCand {
			shown = maxCand
		}
		for _, c := range rep.Candidates[:shown] {
			fmt.Fprintf(w, "    %s\n", c)
		}
		if shown < len(rep.Candidates) {
			fmt.Fprintf(w, "    ... %d more (raise -max-candidates)\n", len(rep.Candidates)-shown)
		}
	}
}

// indent prefixes every line after the first with pad.
func indent(s, pad string) string {
	return strings.ReplaceAll(s, "\n", "\n"+pad)
}

// buildScenario mirrors bgpsim's built-in topology families so the two
// tools accept the same -topo/-size/-event/-enhance vocabulary.
func buildScenario(topo string, size int, event string, mrai time.Duration, enhance string, seed int64) (experiment.Scenario, error) {
	cfg := bgp.DefaultConfig()
	cfg.MRAI = mrai
	switch enhance {
	case "standard":
	case "ssld":
		cfg.Enhancements.SSLD = true
	case "wrate":
		cfg.Enhancements.WRATE = true
	case "assertion":
		cfg.Enhancements.Assertion = true
	case "ghostflush":
		cfg.Enhancements.GhostFlushing = true
	default:
		return experiment.Scenario{}, fmt.Errorf("unknown enhancement %q", enhance)
	}

	wantTLong := false
	switch event {
	case "tdown":
	case "tlong":
		wantTLong = true
	default:
		return experiment.Scenario{}, fmt.Errorf("unknown event %q (want tdown or tlong)", event)
	}

	switch topo {
	case "clique":
		if wantTLong {
			return experiment.Scenario{}, fmt.Errorf("tlong is not defined for cliques; use bclique or internet")
		}
		return experiment.CliqueTDown(size, cfg, seed), nil
	case "bclique":
		if !wantTLong {
			g := topology.BClique(size)
			return experiment.TDownScenario(g, 0, cfg, seed), nil
		}
		return experiment.BCliqueTLong(size, cfg, seed), nil
	case "chain":
		g := topology.Chain(size)
		if wantTLong {
			return experiment.Scenario{}, fmt.Errorf("every chain link is a bridge; tlong is undefined")
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "ring":
		g := topology.Ring(size)
		if wantTLong {
			return experiment.TLongScenario(g, 0, topology.NormEdge(0, 1), cfg, seed), nil
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "star":
		g := topology.Star(size)
		if wantTLong {
			return experiment.Scenario{}, fmt.Errorf("every star link is a bridge; tlong is undefined")
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "figure1":
		g := topology.Figure1()
		if wantTLong {
			return experiment.TLongScenario(g, 0, topology.Figure1FailedLink(), cfg, seed), nil
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "figure2":
		g := topology.Figure2Loop(size, size)
		if wantTLong {
			return experiment.TLongScenario(g, 0, topology.NormEdge(0, 1), cfg, seed), nil
		}
		return experiment.TDownScenario(g, 0, cfg, seed), nil
	case "internet":
		var gen experiment.Generator
		if wantTLong {
			gen = experiment.InternetTLong(size, cfg, seed)
		} else {
			gen = experiment.InternetTDown(size, cfg, seed)
		}
		return gen(0)
	default:
		return experiment.Scenario{}, fmt.Errorf("unknown topology %q", topo)
	}
}
