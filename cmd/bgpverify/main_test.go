package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func runVerify(t *testing.T, args ...string) (string, string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), stderr.String(), err
}

// TestClique30UnderOneSecond pins the acceptance criterion from the
// static-analysis design: verifying a 30-node clique completes in well
// under a second because the shortest-path fast path never materializes
// the exponential permitted-path universe (and never instantiates the
// DES kernel).
func TestClique30UnderOneSecond(t *testing.T) {
	start := time.Now()
	out, _, err := runVerify(t, "-topo", "clique", "-size", "30", "-require", "safe")
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if elapsed >= time.Second {
		t.Fatalf("clique-30 verification took %v, want < 1s", elapsed)
	}
	if !strings.Contains(out, "clique-30-tdown: SAFE (increasing-ranking)") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestGadgetUnsafeWithWheel(t *testing.T) {
	out, _, err := runVerify(t, "-gadget", "-require", "unsafe")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "BAD GADGET: UNSAFE") {
		t.Fatalf("missing UNSAFE verdict:\n%s", out)
	}
	if !strings.Contains(out, "dispute wheel, 3 pivot(s)") {
		t.Fatalf("missing wheel witness:\n%s", out)
	}
}

func TestRequireMismatchFails(t *testing.T) {
	_, _, err := runVerify(t, "-gadget", "-require", "safe")
	if err == nil || !strings.Contains(err.Error(), "verdict requirement failed") {
		t.Fatalf("want requirement failure, got %v", err)
	}
}

// TestExampleSpecs keeps the checked-in example scenario specs loading
// and statically SAFE — the same invariant CI asserts.
func TestExampleSpecs(t *testing.T) {
	dir := filepath.Join("..", "..", "examples", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read specs dir: %v", err)
	}
	found := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".json") {
			continue
		}
		found++
	}
	if found == 0 {
		t.Fatal("no example specs found")
	}
	out, _, err := runVerify(t, "-require", "safe", dir)
	if err != nil {
		t.Fatalf("run over %s: %v\n%s", dir, err, out)
	}
	if got := strings.Count(out, ": SAFE"); got != found {
		t.Fatalf("want %d SAFE verdicts, got %d:\n%s", found, got, out)
	}
}

func TestJSONOutput(t *testing.T) {
	out, _, err := runVerify(t, "-gadget", "-candidates", "-json")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	var reports []struct {
		Name   string `json:"name"`
		Report struct {
			Verdict string `json:"verdict"`
			Wheel   *struct {
				Pivots []json.RawMessage `json:"pivots"`
			} `json:"wheel"`
			Candidates []json.RawMessage `json:"candidates"`
		} `json:"report"`
	}
	if err := json.Unmarshal([]byte(out), &reports); err != nil {
		t.Fatalf("parse JSON output: %v\n%s", err, out)
	}
	if len(reports) != 1 || reports[0].Name != "BAD GADGET" {
		t.Fatalf("unexpected reports: %+v", reports)
	}
	r := reports[0].Report
	if r.Verdict != "UNSAFE" || r.Wheel == nil || len(r.Wheel.Pivots) != 3 {
		t.Fatalf("unexpected gadget report: %+v", r)
	}
	if len(r.Candidates) == 0 {
		t.Fatal("candidates requested but absent from JSON")
	}
}

func TestCandidateRendering(t *testing.T) {
	out, _, err := runVerify(t, "-topo", "clique", "-size", "4", "-candidates", "-max-candidates", "2")
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if !strings.Contains(out, "transient-loop candidates: 6 pair(s)") {
		t.Fatalf("missing candidate stats:\n%s", out)
	}
	if !strings.Contains(out, "... 4 more") {
		t.Fatalf("missing truncation note:\n%s", out)
	}
}

func TestBadFlagCombos(t *testing.T) {
	if _, _, err := runVerify(t); err == nil {
		t.Fatal("no targets should fail")
	}
	if _, _, err := runVerify(t, "-require", "maybe", "-gadget"); err == nil {
		t.Fatal("bad -require value should fail")
	}
	if _, _, err := runVerify(t, "-topo", "moebius"); err == nil {
		t.Fatal("unknown topology should fail")
	}
}
