// Command bgpd serves the simulator as a service: scenario specs are
// POSTed as JSON jobs, executed on a bounded worker pool through the
// same sweep engine behind bgpsim, and the results — digests included —
// are byte-identical to a local run. See the "Service layer" section of
// DESIGN.md.
//
//	bgpd -listen :8439 -store-dir /var/lib/bgploop
//
// With -store-dir the server is crash-safe: accepted jobs are written to
// a fsynced WAL before the submit response, and a restarted bgpd replays
// the log — incomplete jobs re-enqueue and resume from their sweep
// journals, finished jobs keep answering GET /v1/runs/{id}.
//
//	curl -s localhost:8439/v1/runs -d '{"spec": {"topology": {"family":
//	  "clique", "size": 10}, "event": "tdown"}, "trials": 4}'
//	curl -s localhost:8439/v1/runs/job-000001
//	curl -sN localhost:8439/v1/runs/job-000001/events
//	curl -s localhost:8439/metrics
//
// Endpoints:
//
//	POST /v1/runs             submit a job ({"spec": <ScenarioSpec>, "trials": N})
//	GET  /v1/runs             list jobs
//	GET  /v1/runs/{id}        job state, stats, aggregate, digests
//	GET  /v1/runs/{id}/events progress stream (NDJSON; SSE with
//	                          Accept: text/event-stream)
//	GET  /healthz             liveness (503 while draining)
//	GET  /metrics             text exposition: queue depth, admission
//	                          rejects, cache hit ratio, latency histograms
//
// Admission control: jobs beyond the queue depth are refused with 429 +
// Retry-After; statically-UNSAFE scenarios are refused with 422 under
// -preflight strict (the default) or admitted with a warning under
// -preflight warn. Identical concurrent submissions collapse onto one
// job; identical trials across different jobs share one execution; and a
// repeat submission after completion is served from the result cache
// (stats show Executed=0).
//
// SIGINT/SIGTERM starts a graceful drain: admission stops, queued and
// running jobs finish (bounded by -drain-timeout, then canceled), and
// the HTTP listener shuts down.
//
// With -dist the server also acts as a distributed-sweep coordinator:
// worker processes (`bgpd -worker -coordinator=<url>`, or the thin
// `bgpworker` binary) register over /v1/work, pull leased chunks of
// trial indices, execute them through the same sweep engine, and report
// per-trial results. Crashed or stalled workers have their leases
// reassigned after -dist-lease-ttl, the tail of each sweep is hedged to
// idle workers, and the merged output stays byte-identical to a local
// run. In -worker mode SIGTERM drains gracefully: the lease in hand is
// finished and reported, no new lease is taken, and the worker
// deregisters.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"bgploop/internal/buildinfo"
	"bgploop/internal/dist"
	"bgploop/internal/serve"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "bgpd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("bgpd", flag.ContinueOnError)
	var (
		versionF = fs.Bool("version", false, "print the build-info stamp (module version, VCS revision) and exit")

		listen    = fs.String("listen", "localhost:8439", "address to serve on")
		cache     = fs.String("cache-dir", "", "content-addressed result cache; repeat submissions are served from disk")
		store     = fs.String("store-dir", "", "durable state root: job WAL under <dir>/wal plus a default cache under <dir>/cache; accepted jobs survive a crash and resume on restart")
		jsync     = fs.Int("journal-sync", 0, "fsync the sweep checkpoint journal every N trial appends (0 = only on close, 1 = every append)")
		workers   = fs.Int("workers", 2, "job worker pool width (in-flight job cap)")
		queue     = fs.Int("queue", 16, "admission queue depth; beyond it submissions get 429")
		j         = fs.Int("j", 1, "trial parallelism inside each job (results are byte-identical at any width)")
		preflight = fs.String("preflight", "strict", "static safety gate for submissions: strict refuses UNSAFE scenarios with 422, warn runs them with a warning")
		timeout   = fs.Duration("job-timeout", 0, "per-job execution deadline (0 = none)")
		drainT    = fs.Duration("drain-timeout", 30*time.Second, "graceful drain budget on SIGTERM before in-flight jobs are canceled")
		maxNodes  = fs.Int("max-nodes", serve.DefaultMaxNodes, "largest accepted topology")
		maxTrials = fs.Int("max-trials", serve.DefaultMaxTrials, "largest accepted per-job trial count")

		distOn    = fs.Bool("dist", false, "act as a distributed-sweep coordinator: mount /v1/work and fan cacheable jobs out to registered workers")
		distChunk = fs.Int("dist-chunk", 4, "trials per lease")
		distTTL   = fs.Duration("dist-lease-ttl", 60*time.Second, "lease deadline; expired leases are reassigned")
		distHedge = fs.Int("dist-hedge", 2, "hedge the sweep tail when at most this many chunks remain outstanding (0 disables)")

		workerMode  = fs.Bool("worker", false, "run as a fleet worker instead of a server (requires -coordinator)")
		coordinator = fs.String("coordinator", "", "coordinator base URL for -worker mode, e.g. http://host:8439")
		workerName  = fs.String("worker-name", "", "advisory worker label sent at registration")
		workerCache = fs.String("worker-cache-dir", "", "worker-local result cache; re-leased chunks are served from disk")
		pollIvl     = fs.Duration("poll-interval", 250*time.Millisecond, "idle wait between lease polls in -worker mode")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *versionF {
		fmt.Println("bgpd", buildinfo.Read())
		return nil
	}
	if *workerMode {
		return runWorker(dist.WorkerConfig{
			Coordinator:  *coordinator,
			Name:         *workerName,
			Parallelism:  *j,
			CacheDir:     *workerCache,
			PollInterval: *pollIvl,
		})
	}

	var policy serve.PreflightPolicy
	switch *preflight {
	case "strict":
		policy = serve.PreflightStrict
	case "warn":
		policy = serve.PreflightWarn
	default:
		return fmt.Errorf("-preflight %q: want strict or warn", *preflight)
	}

	var coord *dist.Coordinator
	if *distOn {
		var err error
		coord, err = dist.New(dist.Config{
			ChunkSize: *distChunk,
			LeaseTTL:  *distTTL,
			HedgeLast: *distHedge,
			StoreDir:  *store,
			Now:       time.Now,
		})
		if err != nil {
			return err
		}
		defer func() { _ = coord.Close() }()
	}

	srv, err := serve.New(serve.Config{
		CacheDir:     *cache,
		StoreDir:     *store,
		JournalSync:  *jsync,
		Workers:      *workers,
		QueueDepth:   *queue,
		TrialWorkers: *j,
		JobTimeout:   *timeout,
		Preflight:    policy,
		Limits: serve.Limits{
			MaxNodes:  *maxNodes,
			MaxTrials: *maxTrials,
		},
		Now:  time.Now,
		Dist: coord,
	})
	if err != nil {
		return err
	}
	if *store != "" {
		rec := srv.Recovery()
		fmt.Fprintf(os.Stderr, "bgpd: WAL recovery: %d jobs re-enqueued, %d terminal jobs restored, %d corrupt records dropped, log %d bytes\n",
			rec.Replayed, rec.Restored, rec.DroppedRecords, rec.WALBytes)
	}

	httpSrv := &http.Server{
		Addr:              *listen,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		if err := httpSrv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
			return
		}
		errc <- nil
	}()
	fmt.Fprintf(os.Stderr, "bgpd: serving on %s (workers=%d queue=%d preflight=%s cache=%q store=%q)\n",
		*listen, *workers, *queue, policy, *cache, *store)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Drain first so queued jobs finish and their event streams close,
	// then shut the listener down (which waits for in-flight handlers).
	fmt.Fprintln(os.Stderr, "bgpd: draining...")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainT)
	defer cancel()
	if err := srv.Drain(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "bgpd: drain incomplete, in-flight jobs canceled: %v\n", err)
	}
	shutCtx, cancel2 := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel2()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	fmt.Fprintln(os.Stderr, "bgpd: drained, bye")
	return <-errc
}

// runWorker is -worker mode: the process joins a coordinator's fleet
// and loops pull-execute-report until drained. The first SIGINT/SIGTERM
// drains gracefully — the lease in hand finishes and is reported, no
// new lease is taken, and the worker deregisters; a second signal
// abandons the lease (the coordinator reassigns it after the TTL).
func runWorker(cfg dist.WorkerConfig) error {
	if cfg.Coordinator == "" {
		return errors.New("-worker needs -coordinator=<url>")
	}
	cfg.Sleep = func(ctx context.Context, d time.Duration) {
		t := time.NewTimer(d)
		defer t.Stop()
		select {
		case <-t.C:
		case <-ctx.Done():
		}
	}
	w, err := dist.NewWorker(cfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "bgpd: worker draining (finishing current lease)...")
		w.Drain()
		<-sigc
		fmt.Fprintln(os.Stderr, "bgpd: worker abandoning lease")
		cancel()
	}()

	fmt.Fprintf(os.Stderr, "bgpd: worker joining %s\n", cfg.Coordinator)
	err = w.Run(ctx)
	st := w.Stats()
	fmt.Fprintf(os.Stderr, "bgpd: worker done: %d leases (%d hedged), %d trials, %d trial errors, %d transport retries\n",
		st.Leases, st.Hedged, st.Trials, st.Errors, st.Retries)
	if errors.Is(err, context.Canceled) {
		return nil
	}
	return err
}
