// Command detlint is the repo's determinism-lint gate: it runs the
// internal/analysis suite (norealtime, noglobalrand, maprange,
// noconcurrency, floateq) over the module and exits non-zero on any
// finding. CI runs it on every push; run it locally with
//
//	go run ./cmd/detlint ./...
//
// Examples:
//
//	detlint ./...                   # whole module (the CI gate)
//	detlint ./internal/bgp          # one package
//	detlint -tests ./internal/...   # include in-package _test.go files
//	detlint -run maprange ./...     # a single analyzer
//	detlint -vet ./...              # also run `go vet` afterwards
//	detlint -list                   # describe the analyzers
//
// Intentional exceptions are annotated in the source:
//
//	//detlint:allow <analyzer> <justification>
//
// on the offending line or the line above. See the "Determinism
// contract" section of README.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"strings"

	"bgploop/internal/analysis"
	"bgploop/internal/buildinfo"
)

func main() {
	code, err := run(os.Args[1:], os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "detlint:", err)
		os.Exit(2)
	}
	os.Exit(code)
}

func run(args []string, out io.Writer) (int, error) {
	fs := flag.NewFlagSet("detlint", flag.ContinueOnError)
	var (
		versionF = fs.Bool("version", false, "print the build-info stamp (module version, VCS revision) and exit")

		list  = fs.Bool("list", false, "describe the analyzers and exit")
		tests = fs.Bool("tests", false, "also analyze in-package _test.go files")
		only  = fs.String("run", "", "comma-separated analyzer names to run (default: all)")
		vet   = fs.Bool("vet", false, "additionally run `go vet` on the same patterns")
	)
	if err := fs.Parse(args); err != nil {
		return 2, err
	}
	if *versionF {
		fmt.Fprintln(out, "detlint", buildinfo.Read())
		return 0, nil
	}

	analyzers := analysis.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(out, "%s\n    %s\n", a.Name, strings.ReplaceAll(a.Doc, "\n", "\n    "))
		}
		return 0, nil
	}
	if *only != "" {
		var err error
		if analyzers, err = selectAnalyzers(analyzers, *only); err != nil {
			return 2, err
		}
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	diags, err := analysis.Run(".", patterns, analyzers, *tests)
	if err != nil {
		return 2, err
	}
	for _, d := range diags {
		fmt.Fprintln(out, d)
	}
	code := 0
	if len(diags) > 0 {
		fmt.Fprintf(out, "detlint: %d finding(s)\n", len(diags))
		code = 1
	}
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Stdout = out
		cmd.Stderr = os.Stderr
		if err := cmd.Run(); err != nil {
			fmt.Fprintf(out, "detlint: go vet failed: %v\n", err)
			code = 1
		}
	}
	return code, nil
}

func selectAnalyzers(all []*analysis.Analyzer, names string) ([]*analysis.Analyzer, error) {
	byName := map[string]*analysis.Analyzer{}
	for _, a := range all {
		byName[a.Name] = a
	}
	var picked []*analysis.Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("unknown analyzer %q (see -list)", name)
		}
		picked = append(picked, a)
	}
	return picked, nil
}
