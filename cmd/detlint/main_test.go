package main

import (
	"strings"
	"testing"
)

// TestGateIsGreen mirrors CI: the full suite over the whole module must
// produce no findings.
func TestGateIsGreen(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"./..."}, &out)
	if err != nil {
		t.Fatalf("detlint errored: %v", err)
	}
	if code != 0 {
		t.Fatalf("detlint exit %d:\n%s", code, out.String())
	}
}

func TestList(t *testing.T) {
	var out strings.Builder
	code, err := run([]string{"-list"}, &out)
	if err != nil || code != 0 {
		t.Fatalf("code %d, err %v", code, err)
	}
	for _, name := range []string{"norealtime", "noglobalrand", "maprange", "noconcurrency", "floateq"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, out.String())
		}
	}
}

func TestRunSelection(t *testing.T) {
	var out strings.Builder
	if code, err := run([]string{"-run", "maprange,floateq", "./..."}, &out); err != nil || code != 0 {
		t.Fatalf("code %d, err %v:\n%s", code, err, out.String())
	}
	if _, err := run([]string{"-run", "nosuchrule", "./..."}, &out); err == nil {
		t.Error("unknown analyzer accepted")
	}
}
