package bgploop_test

import (
	"errors"
	"strings"
	"testing"
	"time"

	"bgploop"
)

func TestQuickstartFlow(t *testing.T) {
	s := bgploop.CliqueTDown(6, bgploop.DefaultConfig(), 1)
	rep, err := bgploop.Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvergenceTime <= 0 {
		t.Error("no convergence time")
	}
	if rep.LoopingRatio <= 0 {
		t.Error("clique T_down produced no looping")
	}
}

func TestFigure1Scenario(t *testing.T) {
	rep, err := bgploop.Run(bgploop.Figure1TLong(bgploop.DefaultConfig(), 1))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range rep.Loops {
		if l.Size() == 2 && l.Nodes[0] == 5 && l.Nodes[1] == 6 {
			found = true
		}
	}
	if !found {
		t.Errorf("canonical 5<->6 loop missing: %v", rep.Loops)
	}
}

func TestBCliqueTLong(t *testing.T) {
	rep, err := bgploop.Run(bgploop.BCliqueTLong(5, bgploop.DefaultConfig(), 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Event != bgploop.TLong {
		t.Errorf("event = %v", rep.Event)
	}
}

func TestInternetLike(t *testing.T) {
	g, err := bgploop.InternetLike(29, 7)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 29 || !g.Connected() {
		t.Errorf("internet graph malformed: %d nodes", g.NumNodes())
	}
}

func TestCompareEnhancements(t *testing.T) {
	tbl, err := bgploop.CompareEnhancements(bgploop.CliqueTDown(5, bgploop.DefaultConfig(), 3))
	if err != nil {
		t.Fatal(err)
	}
	out := tbl.String()
	for _, v := range []string{"standard", "ssld", "wrate", "assertion", "ghostflush"} {
		if !strings.Contains(out, v) {
			t.Errorf("comparison missing %q", v)
		}
	}
}

func TestFigureIDs(t *testing.T) {
	ids := bgploop.FigureIDs()
	if len(ids) != 18 {
		t.Fatalf("FigureIDs = %v, want 18 figures", ids)
	}
}

func TestRunFigureQuick(t *testing.T) {
	sc := bgploop.QuickScale()
	sc.CliqueSizes = []int{4}
	sc.Trials = 1
	tbl, err := bgploop.RunFigure("4a", sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 1 {
		t.Errorf("rows = %d, want 1", len(tbl.Rows))
	}
}

func TestCustomMRAI(t *testing.T) {
	cfg := bgploop.DefaultConfig()
	cfg.MRAI = 5 * time.Second
	rep, err := bgploop.Run(bgploop.CliqueTDown(6, cfg, 1))
	if err != nil {
		t.Fatal(err)
	}
	cfg30 := bgploop.DefaultConfig()
	rep30, err := bgploop.Run(bgploop.CliqueTDown(6, cfg30, 1))
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvergenceTime >= rep30.ConvergenceTime {
		t.Errorf("MRAI 5s convergence %v not faster than 30s %v",
			rep.ConvergenceTime, rep30.ConvergenceTime)
	}
}

func TestGuardedRunAndShrinkAPI(t *testing.T) {
	// Guards are observation-only: a guarded run succeeds with identical
	// metrics (asserted in depth by internal/experiment's parity test).
	s := bgploop.CliqueTDown(5, bgploop.DefaultConfig(), 4)
	s.Guard = bgploop.GuardConfig{Cadence: bgploop.GuardFull}
	if _, err := bgploop.Run(s); err != nil {
		t.Fatalf("guarded run: %v", err)
	}

	// The corrupted-FIB self-test hook yields a violation; its forensic
	// bundle shrinks to a minimal reproducer through the public API.
	n := 2
	s.Guard.CorruptFIBNode = &n
	dir := t.TempDir()
	_, _, _, err := bgploop.RunSweep(bgploop.Repeat(s), 1, bgploop.SweepOptions{CacheDir: dir})
	if err == nil {
		t.Fatal("corrupted-FIB sweep succeeded")
	}
	var tf *bgploop.TrialFailure
	if !errors.As(err, &tf) || tf.ForensicPath == "" {
		t.Fatalf("no persisted forensic bundle in %v", err)
	}
	b, err := bgploop.ReadForensicBundle(tf.ForensicPath)
	if err != nil {
		t.Fatal(err)
	}
	spec, stats, err := bgploop.ShrinkFailure(b, 64)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Topology.Size > 4 || stats.Runs == 0 {
		t.Errorf("shrunk to %d nodes in %d runs", spec.Topology.Size, stats.Runs)
	}
}
