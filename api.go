package bgploop

import (
	"bgploop/internal/bgp"
	"bgploop/internal/core"
	"bgploop/internal/experiment"
	"bgploop/internal/faultplan"
	"bgploop/internal/figures"
	"bgploop/internal/report"
	"bgploop/internal/topology"
)

// Re-exported types forming the public API surface. The implementation
// lives in internal packages; these aliases are the supported entry
// points.
type (
	// Scenario fully describes one simulation run (topology, failure
	// event, protocol configuration, workload, seed).
	Scenario = experiment.Scenario
	// Report is the outcome of a run: convergence time, looping
	// duration, TTL exhaustions, looping ratio, exact loop intervals,
	// and control-plane counters.
	Report = core.Report
	// Config is the BGP speaker configuration (MRAI, jitter, processing
	// delays, enhancements).
	Config = bgp.Config
	// Enhancements selects the convergence enhancements of §5.
	Enhancements = bgp.Enhancements
	// Graph is an AS-level topology.
	Graph = topology.Graph
	// Node identifies an AS.
	Node = topology.Node
	// Table is a rendered result table (text/CSV).
	Table = report.Table
	// Scale sets figure sweep resolution.
	Scale = figures.Scale
	// FaultPlan is a declarative multi-phase fault script: an ordered
	// timeline of link/node failures, correlated failure groups, flap
	// generators, and session resets, with per-phase measurement.
	FaultPlan = faultplan.Plan
	// FaultPhase is one run-to-quiescence segment of a FaultPlan.
	FaultPhase = faultplan.Phase
	// FaultAction is one entry of a phase's action timeline.
	FaultAction = faultplan.Action
	// QuiescenceFailure is the structured diagnosis of a run that
	// exhausted its event budget or virtual-time horizon; its Verdict
	// separates "oscillating" from "still-converging".
	QuiescenceFailure = experiment.QuiescenceFailure
	// TrialFailure reports one failed (or panicked) trial of a sweep,
	// carrying the replayable Scenario and seed.
	TrialFailure = experiment.TrialFailure
	// SweepOptions tunes continue-on-failure trial sweeps.
	SweepOptions = experiment.SweepOptions
)

// ErrNoQuiescence is in the error chain of every QuiescenceFailure.
var ErrNoQuiescence = experiment.ErrNoQuiescence

// Event kinds of the paper's two failure workloads.
const (
	TDown = experiment.TDown
	TLong = experiment.TLong
)

// DefaultConfig returns the paper's standard-BGP configuration: MRAI 30 s
// with jitter factor U[0.75, 1], processing delay U[0.1 s, 0.5 s], and the
// shortest-path / lowest-next-hop policy.
func DefaultConfig() Config { return bgp.DefaultConfig() }

// Run executes a scenario and returns the enriched report.
func Run(s Scenario) (*Report, error) { return core.Run(s) }

// CliqueTDown builds the paper's Clique T_down scenario (Figure 3a):
// destination AS 0 of an n-clique becomes unreachable.
func CliqueTDown(n int, cfg Config, seed int64) Scenario {
	return experiment.CliqueTDown(n, cfg, seed)
}

// BCliqueTLong builds the paper's B-Clique T_long scenario (Figure 3b):
// the [0, n] shortcut of a size-n B-Clique fails.
func BCliqueTLong(n int, cfg Config, seed int64) Scenario {
	return experiment.BCliqueTLong(n, cfg, seed)
}

// Figure1TLong builds the paper's Figure 1 scenario: the 7-node example
// topology whose [4 0] link failure creates the canonical transient
// 2-node loop between ASes 5 and 6.
func Figure1TLong(cfg Config, seed int64) Scenario {
	return experiment.TLongScenario(topology.Figure1(), 0, topology.Figure1FailedLink(), cfg, seed)
}

// InternetLike generates a seeded Internet-like AS topology of n nodes,
// the stand-in for the paper's Internet-derived topologies (see DESIGN.md
// for the substitution rationale).
func InternetLike(n int, seed int64) (*Graph, error) {
	return topology.InternetLike(n, seed)
}

// CompareEnhancements runs a scenario under the five §5 protocol variants
// and tabulates the metrics side by side.
func CompareEnhancements(base Scenario) (*Table, error) {
	variants, names := core.DefaultVariants()
	return core.CompareEnhancements(base, variants, names)
}

// FigureIDs lists the regenerable figures ("4a" ... "9d").
func FigureIDs() []string { return figures.IDs() }

// RunFigure regenerates one of the paper's figures at the given scale.
func RunFigure(id string, sc Scale) (*Table, error) { return figures.Run(id, sc) }

// FullScale returns the paper-fidelity sweep ranges; QuickScale a
// seconds-fast smoke-test grid.
func FullScale() Scale  { return figures.FullScale() }
func QuickScale() Scale { return figures.QuickScale() }
