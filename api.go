package bgploop

import (
	"context"

	"bgploop/internal/bgp"
	"bgploop/internal/core"
	"bgploop/internal/experiment"
	"bgploop/internal/faultplan"
	"bgploop/internal/figures"
	"bgploop/internal/invariant"
	"bgploop/internal/report"
	"bgploop/internal/sweep"
	"bgploop/internal/topology"
)

// Re-exported types forming the public API surface. The implementation
// lives in internal packages; these aliases are the supported entry
// points.
type (
	// Scenario fully describes one simulation run (topology, failure
	// event, protocol configuration, workload, seed).
	Scenario = experiment.Scenario
	// Report is the outcome of a run: convergence time, looping
	// duration, TTL exhaustions, looping ratio, exact loop intervals,
	// and control-plane counters.
	Report = core.Report
	// Config is the BGP speaker configuration (MRAI, jitter, processing
	// delays, enhancements).
	Config = bgp.Config
	// Enhancements selects the convergence enhancements of §5.
	Enhancements = bgp.Enhancements
	// Graph is an AS-level topology.
	Graph = topology.Graph
	// Node identifies an AS.
	Node = topology.Node
	// Table is a rendered result table (text/CSV).
	Table = report.Table
	// Scale sets figure sweep resolution.
	Scale = figures.Scale
	// FaultPlan is a declarative multi-phase fault script: an ordered
	// timeline of link/node failures, correlated failure groups, flap
	// generators, and session resets, with per-phase measurement.
	FaultPlan = faultplan.Plan
	// FaultPhase is one run-to-quiescence segment of a FaultPlan.
	FaultPhase = faultplan.Phase
	// FaultAction is one entry of a phase's action timeline.
	FaultAction = faultplan.Action
	// QuiescenceFailure is the structured diagnosis of a run that
	// exhausted its event budget or virtual-time horizon; its Verdict
	// separates "oscillating" from "still-converging".
	QuiescenceFailure = experiment.QuiescenceFailure
	// TrialFailure reports one failed (or panicked) trial of a sweep,
	// carrying the replayable Scenario and seed.
	TrialFailure = experiment.TrialFailure
	// SweepOptions tunes trial sweeps: failure policy, worker count,
	// result cache, and checkpoint/resume.
	SweepOptions = experiment.SweepOptions
	// SweepStats counts how each trial of a sweep was satisfied: Executed
	// simulations, CacheHits/CacheMisses against the content-addressed
	// store, Resumed journal entries, Deduped in-flight shares, and the
	// Failed/Canceled/Skipped remainder. CacheHitRatio() summarizes the
	// store's effectiveness; bgpd exposes the same counters on /metrics.
	SweepStats = sweep.Stats
	// Generator produces the scenario for trial i of a sweep.
	Generator = experiment.Generator
	// TrialResult is the raw per-trial outcome backing an Aggregate.
	TrialResult = experiment.Result
	// Aggregate summarizes a sweep's per-trial metrics.
	Aggregate = experiment.Aggregate
	// GuardConfig selects the runtime invariant-guard cadence and the
	// forensic parameters of a run (Scenario.Guard). Guards are
	// observation-only: enabling them never changes a run's results.
	GuardConfig = invariant.Config
	// GuardCadence is the sweep-check schedule of the guard engine.
	GuardCadence = invariant.Cadence
	// Violation is one detected invariant breach with its bounded event
	// trail.
	Violation = invariant.Violation
	// ViolationError is the error a guarded run returns on a breach.
	ViolationError = invariant.ViolationError
	// ForensicBundle is the serialized record of one failed trial —
	// scenario spec, failure signature, event trail, RIB digests —
	// written under the sweep cache and consumed by bgpsim -shrink.
	ForensicBundle = invariant.Bundle
	// ShrinkStats reports the work a scenario shrink performed.
	ShrinkStats = invariant.ShrinkStats
	// ScenarioSpec is the JSON scenario-file schema (bgpsim -scenario),
	// also the replayable form embedded in forensic bundles.
	ScenarioSpec = experiment.ScenarioSpec
)

// Guard cadences for GuardConfig.Cadence.
const (
	// GuardOff disables the guards (the default).
	GuardOff = invariant.CadenceOff
	// GuardPhase checks sweep invariants at phase boundaries only.
	GuardPhase = invariant.CadencePhase
	// GuardEveryN checks sweep invariants every GuardConfig.EveryN events.
	GuardEveryN = invariant.CadenceEveryN
	// GuardFull checks sweep invariants after every kernel event.
	GuardFull = invariant.CadenceFull
)

// ErrNoQuiescence is in the error chain of every QuiescenceFailure.
var ErrNoQuiescence = experiment.ErrNoQuiescence

// Event kinds of the paper's two failure workloads.
const (
	TDown = experiment.TDown
	TLong = experiment.TLong
)

// DefaultConfig returns the paper's standard-BGP configuration: MRAI 30 s
// with jitter factor U[0.75, 1], processing delay U[0.1 s, 0.5 s], and the
// shortest-path / lowest-next-hop policy.
func DefaultConfig() Config { return bgp.DefaultConfig() }

// Run executes a scenario and returns the enriched report.
func Run(s Scenario) (*Report, error) { return core.Run(s) }

// RunContext is Run with cooperative cancellation: the experiment
// watchdog polls ctx between kernel event chunks, so Ctrl-C (or a sweep
// abort) stops an in-flight simulation promptly without affecting the
// event order of runs that complete.
func RunContext(ctx context.Context, s Scenario) (*Report, error) {
	return core.RunContext(ctx, s)
}

// Repeat derives trial i of a sweep from s by offsetting the seed.
func Repeat(s Scenario) Generator { return experiment.Repeat(s) }

// RunSweep fans trials across the parallel sweep executor — workers,
// content-addressed result cache, checkpoint/resume, and in-flight
// dedupe are set via SweepOptions — and aggregates the per-trial
// metrics. At every worker width the outcome is byte-identical to the
// sequential path. Guarded trials that fail write a forensic bundle
// under <SweepOptions.CacheDir>/forensics/ for bgpsim -shrink.
func RunSweep(gen Generator, trials int, opts SweepOptions) (Aggregate, []*TrialResult, SweepStats, error) {
	return experiment.RunSweep(gen, trials, opts)
}

// CliqueTDown builds the paper's Clique T_down scenario (Figure 3a):
// destination AS 0 of an n-clique becomes unreachable.
func CliqueTDown(n int, cfg Config, seed int64) Scenario {
	return experiment.CliqueTDown(n, cfg, seed)
}

// BCliqueTLong builds the paper's B-Clique T_long scenario (Figure 3b):
// the [0, n] shortcut of a size-n B-Clique fails.
func BCliqueTLong(n int, cfg Config, seed int64) Scenario {
	return experiment.BCliqueTLong(n, cfg, seed)
}

// Figure1TLong builds the paper's Figure 1 scenario: the 7-node example
// topology whose [4 0] link failure creates the canonical transient
// 2-node loop between ASes 5 and 6.
func Figure1TLong(cfg Config, seed int64) Scenario {
	return experiment.TLongScenario(topology.Figure1(), 0, topology.Figure1FailedLink(), cfg, seed)
}

// InternetLike generates a seeded Internet-like AS topology of n nodes,
// the stand-in for the paper's Internet-derived topologies (see DESIGN.md
// for the substitution rationale).
func InternetLike(n int, seed int64) (*Graph, error) {
	return topology.InternetLike(n, seed)
}

// CompareEnhancements runs a scenario under the five §5 protocol variants
// and tabulates the metrics side by side.
func CompareEnhancements(base Scenario) (*Table, error) {
	variants, names := core.DefaultVariants()
	return core.CompareEnhancements(base, variants, names)
}

// ReadForensicBundle loads a forensic bundle written by a guarded sweep
// (see SweepOptions.CacheDir; bundles land under <cache>/forensics/).
func ReadForensicBundle(path string) (*ForensicBundle, error) {
	return invariant.ReadBundle(path)
}

// ShrinkFailure delta-debugs a forensic bundle's scenario to a minimal
// reproducer preserving the failure signature. maxRuns caps the candidate
// trials (a library default when <= 0).
func ShrinkFailure(b *ForensicBundle, maxRuns int) (ScenarioSpec, ShrinkStats, error) {
	return experiment.ShrinkFailure(b, maxRuns)
}

// FigureIDs lists the regenerable figures ("4a" ... "9d").
func FigureIDs() []string { return figures.IDs() }

// RunFigure regenerates one of the paper's figures at the given scale.
func RunFigure(id string, sc Scale) (*Table, error) { return figures.Run(id, sc) }

// FullScale returns the paper-fidelity sweep ranges; QuickScale a
// seconds-fast smoke-test grid.
func FullScale() Scale  { return figures.FullScale() }
func QuickScale() Scale { return figures.QuickScale() }
