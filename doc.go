// Package bgploop reproduces "A Study of BGP Path Vector Route Looping
// Behavior" (Pei, Zhao, Massey, Zhang — ICDCS 2004) as a self-contained Go
// library: a discrete-event BGP simulator with the paper's delay model and
// the four convergence enhancements it compares (SSLD, WRATE, Assertion,
// Ghost Flushing), a data-plane replay engine measuring transient-loop
// packet loss via TTL exhaustion, exact transient-loop interval analysis,
// and a harness that regenerates every figure of the paper's evaluation.
//
// # Quick start
//
//	s := bgploop.CliqueTDown(15, bgploop.DefaultConfig(), 1)
//	rep, err := bgploop.Run(s)
//	// rep.ConvergenceTime, rep.LoopingDuration, rep.LoopingRatio, rep.Loops ...
//
// # Regenerating the paper's figures
//
//	tbl, err := bgploop.RunFigure("8a", bgploop.FullScale())
//	fmt.Print(tbl)
//
// or from the command line:
//
//	go run ./cmd/bgpfig -fig all
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-vs-measured comparison of every figure.
package bgploop
